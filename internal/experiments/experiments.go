// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §6) from this repository's implementations: the
// motivation measurements (Table 1, Fig. 2, Fig. 3), the head-to-head
// collection comparison (Fig. 7, Fig. 8), the hardware footprints
// (Fig. 9, Table 3), and the per-primitive studies (Figs. 10–16), plus
// the Appendix A.5/A.6 bound-vs-simulation check.
//
// Two kinds of numbers appear side by side:
//
//   - measured: wall-clock rates of this repository's Go data paths on
//     the local machine, and success rates from Monte-Carlo simulation
//     of the actual stores;
//   - projected: reports/second obtained by combining instrumented
//     per-report costs with the paper's hardware models (the Xeon 4114
//     CPU model and the BlueField-2 NIC model), which is what makes the
//     output comparable to the paper's testbed numbers.
//
// Experiments default to a scaled-down geometry (Scale = 64 divides the
// paper's store sizes) that preserves every load factor and therefore
// every probabilistic shape; pass Scale = 1 to run at paper scale.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated table or figure, as rows of text cells.
type Table struct {
	// ID is the paper artefact this reproduces, e.g. "fig10".
	ID string
	// Title is the caption.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wd := 0
			if i < len(widths) {
				wd = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wd, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Params tunes experiment scale.
type Params struct {
	// Scale divides the paper's store sizes (1 = paper scale; the
	// default 64 preserves all load factors at 1/64 the memory).
	Scale int
	// Trials is the Monte-Carlo repetition count for success-rate
	// experiments.
	Trials int
	// Seed fixes all randomness.
	Seed int64
	// MaxCores caps real parallel measurements (0 = GOMAXPROCS).
	MaxCores int
	// Quick shrinks workloads further for use inside unit tests.
	Quick bool
}

// DefaultParams returns the standard configuration.
func DefaultParams() Params {
	return Params{Scale: 64, Trials: 200, Seed: 1}
}

func (p Params) scale() int {
	if p.Scale < 1 {
		return 1
	}
	return p.Scale
}

func (p Params) trials() int {
	if p.Quick {
		return 40
	}
	if p.Trials < 1 {
		return 100
	}
	return p.Trials
}

// Runner maps experiment IDs to generators.
type Runner struct {
	P Params
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "fig2a", "fig2b", "fig2c", "fig3",
		"fig7a", "fig7b", "fig8", "fig9", "table3",
		"fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "bounds", "ablation",
	}
}

// Run generates one experiment by ID.
func (r Runner) Run(id string) (*Table, error) {
	switch id {
	case "table1":
		return r.Table1(), nil
	case "fig2a":
		return r.Fig2a(), nil
	case "fig2b":
		return r.Fig2b(), nil
	case "fig2c":
		return r.Fig2c(), nil
	case "fig3":
		return r.Fig3(), nil
	case "fig7a":
		return r.Fig7a(), nil
	case "fig7b":
		return r.Fig7b(), nil
	case "fig8":
		return r.Fig8(), nil
	case "fig9":
		return r.Fig9(), nil
	case "table3":
		return r.Table3(), nil
	case "fig10":
		return r.Fig10(), nil
	case "fig11":
		return r.Fig11(), nil
	case "fig12":
		return r.Fig12(), nil
	case "fig13":
		return r.Fig13(), nil
	case "fig14":
		return r.Fig14(), nil
	case "fig15":
		return r.Fig15(), nil
	case "fig16":
		return r.Fig16(), nil
	case "bounds":
		return r.Bounds(), nil
	case "ablation":
		return r.Ablation(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
}

// fmtRate renders a rate with engineering suffixes, like the paper's
// axes (19M, 1.2B, 950K).
func fmtRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fmtPct renders a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
