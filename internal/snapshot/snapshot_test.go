package snapshot

import (
	"bytes"
	"path/filepath"
	"testing"

	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/wire"
)

func fullHost(t *testing.T) *collector.Host {
	t.Helper()
	kw := keywrite.Config{Slots: 1 << 10, DataSize: 4}
	ki := keyincrement.Config{Slots: 1 << 10}
	pc := postcarding.Config{Chunks: 1 << 8, Hops: 5, Values: []uint32{1, 2, 3, 4, 5}}
	ap := appendlist.Config{Lists: 2, EntriesPerList: 64, EntrySize: 4}
	h, err := collector.New(collector.Config{
		KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCaptureRoundTrip(t *testing.T) {
	h := fullHost(t)
	k := wire.KeyFromUint64(42)
	h.KeyWriteStore().Write(k, []byte{9, 8, 7, 6}, 2)
	h.KeyIncrementStore().Increment(k, 100, 2)
	h.PostcardingStore().Write(k, []uint32{1, 2, 3, 4, 5}, 5, 1)

	snap := Capture(h)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	kwst, err := loaded.KeyWriteStore()
	if err != nil {
		t.Fatal(err)
	}
	res, _ := kwst.Query(k, 2, 1)
	if !res.Found || res.Data[0] != 9 {
		t.Errorf("key-write after round trip: %+v", res)
	}
	kist, err := loaded.KeyIncrementStore()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := kist.Query(k, 2); v != 100 {
		t.Errorf("key-increment after round trip: %d", v)
	}
	pcst, err := loaded.PostcardingStore()
	if err != nil {
		t.Fatal(err)
	}
	pres, _ := pcst.Query(k, 1)
	if !pres.Found || len(pres.Values) != 5 {
		t.Errorf("postcarding after round trip: %+v", pres)
	}
	if _, err := loaded.AppendStore(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	h := fullHost(t)
	k := wire.KeyFromUint64(1)
	h.KeyWriteStore().Write(k, []byte{1, 1, 1, 1}, 1)
	snap := Capture(h)
	// Mutate the live store; the snapshot must not change.
	h.KeyWriteStore().Write(k, []byte{2, 2, 2, 2}, 1)
	st, _ := snap.KeyWriteStore()
	res, _ := st.Query(k, 1, 1)
	if !res.Found || res.Data[0] != 1 {
		t.Errorf("snapshot mutated with live store: %+v", res)
	}
}

func TestSaveLoadFile(t *testing.T) {
	h := fullHost(t)
	h.KeyWriteStore().Write(wire.KeyFromUint64(5), []byte{5, 5, 5, 5}, 1)
	path := filepath.Join(t.TempDir(), "dta.snap")
	if err := Capture(h).Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := loaded.KeyWriteStore()
	res, _ := st.Query(wire.KeyFromUint64(5), 1, 1)
	if !res.Found {
		t.Error("file round trip lost data")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestMissingStoresRejected(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	h, _ := collector.New(collector.Config{KeyWrite: &kw})
	snap := Capture(h)
	if _, err := snap.PostcardingStore(); err == nil {
		t.Error("postcarding view over KW-only snapshot")
	}
	if _, err := snap.AppendStore(); err == nil {
		t.Error("append view over KW-only snapshot")
	}
	if _, err := snap.KeyIncrementStore(); err == nil {
		t.Error("key-increment view over KW-only snapshot")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

// TestReplicationMetadataRoundTrip pins the optional HA fields — Append
// head counts and dirty-epoch tags — through serialisation: a resync
// driven from a loaded snapshot must see exactly what the capturing
// cluster attached.
func TestReplicationMetadataRoundTrip(t *testing.T) {
	h := fullHost(t)
	snap := Capture(h)
	snap.AppendHeads = []uint64{7, 131}
	snap.KeyWriteTags = []uint64{0, 3, 0, 5}
	snap.KeyIncTags = []uint64{1}
	snap.PostcardTags = []uint64{0, 2}
	snap.TagBlockBytes = 1024

	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.AppendHeads; len(got) != 2 || got[0] != 7 || got[1] != 131 {
		t.Errorf("AppendHeads = %v", got)
	}
	if got := loaded.KeyWriteTags; len(got) != 4 || got[1] != 3 || got[3] != 5 {
		t.Errorf("KeyWriteTags = %v", got)
	}
	if loaded.TagBlockBytes != 1024 {
		t.Errorf("TagBlockBytes = %d", loaded.TagBlockBytes)
	}
	// Plain captures leave the metadata nil: full replay, old files load.
	bare := Capture(h)
	if bare.AppendHeads != nil || bare.KeyWriteTags != nil || bare.TagBlockBytes != 0 {
		t.Errorf("bare capture carries replication metadata: %+v", bare)
	}
}
