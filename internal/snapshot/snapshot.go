// Package snapshot persists collector store memory to disk so that
// queries can run offline (the dtacollect / dtaquery split): the
// collector's strength is that its structures are plain memory, so a
// snapshot is just the configuration plus the raw buffers.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
)

// Snapshot is the serialised form of a collector's stores.
//
// Beyond the raw buffers, a snapshot may carry replication metadata the
// HA layer attaches at capture time (all optional — offline dtacollect
// snapshots leave them nil and are replayed in full):
//
//   - AppendHeads: per-list cumulative flushed-entry counts from the
//     owning translator's batcher, so a resync can replay exactly the
//     ring suffix a rejoining collector missed and restore its head
//     pointers.
//   - *Tags + TagBlockBytes: per-block last-write epochs from the
//     collector's dirty tracker, so an incremental resync can skip
//     blocks written before the target went stale.
type Snapshot struct {
	KeyWrite     *keywrite.Config
	KeyWriteBuf  []byte
	KeyIncrement *keyincrement.Config
	KeyIncBuf    []byte
	Postcarding  *postcarding.Config
	PostcardBuf  []byte
	Append       *appendlist.Config
	AppendBuf    []byte

	// AppendHeads[l] is the cumulative (non-wrapping) number of entries
	// the capturing collector's translator had flushed into list l; the
	// ring head is AppendHeads[l] % EntriesPerList. Nil when captured
	// outside a replicated cluster.
	AppendHeads []uint64

	// Per-block last-write epoch tags (see internal/ha.Tracker), block
	// size TagBlockBytes. Nil tags mean "unknown: replay everything".
	KeyWriteTags  []uint64
	KeyIncTags    []uint64
	PostcardTags  []uint64
	TagBlockBytes int

	// WALLSN, when non-zero, makes the snapshot a WAL checkpoint: the
	// image covers every logged operation up to and including this log
	// sequence number, so recovery replays only the records above it
	// (see internal/wal).
	WALLSN uint64
}

// Capture copies a collector host's store memory.
func Capture(h *collector.Host) *Snapshot {
	s := &Snapshot{}
	if st := h.KeyWriteStore(); st != nil {
		cfg := st.Indexer().Config()
		s.KeyWrite = &cfg
		s.KeyWriteBuf = append([]byte(nil), st.Buffer()...)
	}
	if st := h.KeyIncrementStore(); st != nil {
		cfg := keyincrement.Config{Slots: uint64(len(st.Buffer()) / keyincrement.CounterSize)}
		s.KeyIncrement = &cfg
		s.KeyIncBuf = append([]byte(nil), st.Buffer()...)
	}
	if st := h.PostcardingStore(); st != nil {
		cfg := st.Coder().Config()
		s.Postcarding = &cfg
		s.PostcardBuf = append([]byte(nil), st.Buffer()...)
	}
	if st := h.AppendStore(); st != nil {
		cfg := st.Config()
		s.Append = &cfg
		s.AppendBuf = append([]byte(nil), st.Buffer()...)
	}
	return s
}

// Write serialises the snapshot.
func (s *Snapshot) Write(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// Read parses a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &s, nil
}

// Save writes the snapshot to a file.
func (s *Snapshot) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Write(f)
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// KeyWriteStore rebuilds a queryable Key-Write view.
func (s *Snapshot) KeyWriteStore() (*keywrite.Store, error) {
	if s.KeyWrite == nil {
		return nil, fmt.Errorf("snapshot: no key-write store")
	}
	return keywrite.NewStoreOver(*s.KeyWrite, s.KeyWriteBuf)
}

// KeyIncrementStore rebuilds a queryable Key-Increment view.
func (s *Snapshot) KeyIncrementStore() (*keyincrement.Store, error) {
	if s.KeyIncrement == nil {
		return nil, fmt.Errorf("snapshot: no key-increment store")
	}
	return keyincrement.NewStoreOver(*s.KeyIncrement, s.KeyIncBuf)
}

// PostcardingStore rebuilds a queryable Postcarding view.
func (s *Snapshot) PostcardingStore() (*postcarding.Store, error) {
	if s.Postcarding == nil {
		return nil, fmt.Errorf("snapshot: no postcarding store")
	}
	return postcarding.NewStoreOver(*s.Postcarding, s.PostcardBuf)
}

// AppendStore rebuilds a pollable Append view.
func (s *Snapshot) AppendStore() (*appendlist.Store, error) {
	if s.Append == nil {
		return nil, fmt.Errorf("snapshot: no append store")
	}
	return appendlist.NewStoreOver(*s.Append, s.AppendBuf)
}
