package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dta/internal/wire"
)

// stagedKW builds a staged Key-Write report for tests.
func stagedKW(key uint64, data []byte, n int) *wire.StagedReport {
	r := &wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: uint8(n), DataLen: uint16(len(data)), Key: wire.KeyFromUint64(key)},
		Data:     data,
	}
	var s wire.StagedReport
	s.Stage(r)
	return &s
}

func stagedAppend(list uint32, data []byte) *wire.StagedReport {
	r := &wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: list, DataLen: uint16(len(data))},
		Data:   data,
	}
	var s wire.StagedReport
	s.Stage(r)
	return &s
}

func TestWriterReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	const records = 500
	for i := 0; i < records; i++ {
		lsn, err := w.Append(stagedKW(uint64(i), []byte{byte(i), 2, 3, 4}, 2), uint64(i)*10)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if got := w.LastLSN(); got != records {
		t.Fatalf("LastLSN = %d, want %d", got, records)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != records {
		t.Fatalf("DurableLSN = %d, want %d", got, records)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var n int
	last, err := Replay(dir, 1, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
		i := int(lsn - 1)
		if nowNs != uint64(i)*10 {
			t.Fatalf("record %d nowNs = %d", i, nowNs)
		}
		if rec.Primitive() != wire.PrimKeyWrite {
			t.Fatalf("record %d primitive = %v", i, rec.Primitive())
		}
		key, red := rec.KeyWriteArgs()
		if *key != wire.KeyFromUint64(uint64(i)) || red != 2 {
			t.Fatalf("record %d key/red mismatch", i)
		}
		if want := []byte{byte(i), 2, 3, 4}; !bytes.Equal(rec.Payload(), want) {
			t.Fatalf("record %d payload %v, want %v", i, rec.Payload(), want)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != records || last != records {
		t.Fatalf("replayed %d records up to %d, want %d", n, last, records)
	}

	// Replay from the middle delivers exactly the suffix.
	n = 0
	first := uint64(0)
	if _, err := Replay(dir, 321, func(lsn, _ uint64, _ *wire.StagedReport) error {
		if first == 0 {
			first = lsn
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != 321 || n != records-320 {
		t.Fatalf("suffix replay: first=%d n=%d", first, n)
	}
}

func TestWriterRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	w, err := Create(dir, Policy{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := w.Append(stagedAppend(7, []byte{byte(i), 1}), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	for _, s := range segs {
		if s.TornBytes != 0 || s.Err != nil {
			t.Fatalf("segment %s damaged: torn=%d err=%v", s.Path, s.TornBytes, s.Err)
		}
	}

	// Reopen continues the LSN sequence.
	w, err = Create(dir, Policy{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(stagedAppend(7, []byte{99, 1}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 41 {
		t.Fatalf("reopened writer assigned LSN %d, want 41", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if _, err := Replay(dir, 1, func(l, _ uint64, _ *wire.StagedReport) error {
		got = append(got, l)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 41 || got[40] != 41 {
		t.Fatalf("replay after reopen: %d records, last %v", len(got), got[len(got)-1:])
	}
}

func TestCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Policy{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := w.Append(stagedKW(uint64(i), []byte{1, 2, 3, 4}, 2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 4 {
		t.Fatalf("want several segments, got %d", len(before))
	}

	// Checkpoint at LSN 30: every segment wholly below is reclaimed.
	removed, err := TruncateBelow(dir, 30)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("expected segment reclamation")
	}
	first, last, err := Bounds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first > 31 {
		t.Fatalf("record 31 reclaimed: first retained LSN %d", first)
	}
	if last != 60 {
		t.Fatalf("tail lost: last LSN %d", last)
	}
	// The suffix above the checkpoint replays intact.
	n := 0
	if _, err := Replay(dir, 31, func(uint64, uint64, *wire.StagedReport) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("replayed %d records above checkpoint, want 30", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAfterFullTruncationContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append(stagedKW(uint64(i), []byte{1, 2, 3, 4}, 2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A checkpoint covering the whole log lets every segment go.
	snapDir(t, dir, 10)
	if _, err := TruncateBelow(dir, 10); err != nil {
		t.Fatal(err)
	}
	// Remove the one remaining (tail) segment manually to simulate full
	// reclamation, then reopen: the LSN sequence must continue from the
	// checkpoint, not restart at 1.
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		os.Remove(s.Path)
	}
	w, err = Create(dir, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(stagedKW(1, []byte{1, 2, 3, 4}, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-checkpoint reopen assigned LSN %d, want 11", lsn)
	}
	w.Close()
}

// snapDir writes a minimal checkpoint at the given LSN.
func snapDir(t *testing.T, dir string, lsn uint64) {
	t.Helper()
	snap := testSnapshot()
	snap.WALLSN = lsn
	if err := WriteCheckpoint(dir, snap); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		ivl  time.Duration
		err  bool
	}{
		{"none", SyncNone, 0, false},
		{"batch", SyncBatch, 0, false},
		{"every-batch", SyncBatch, 0, false},
		{"interval", SyncInterval, 0, false},
		{"interval=50ms", SyncInterval, 50 * time.Millisecond, false},
		{"interval=bogus", 0, 0, true},
		{"wat", 0, 0, true},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParsePolicy(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if p.Mode != c.mode {
			t.Errorf("ParsePolicy(%q).Mode = %v, want %v", c.in, p.Mode, c.mode)
		}
		if c.ivl != 0 && p.Interval != c.ivl {
			t.Errorf("ParsePolicy(%q).Interval = %v, want %v", c.in, p.Interval, c.ivl)
		}
	}
}

func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadMeta(dir); err != nil || m != nil {
		t.Fatalf("empty dir meta: %v, %v", m, err)
	}
	in := testMeta()
	if err := SaveMeta(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out.Translator.KeyWrite == nil || *out.Translator.KeyWrite != *in.Translator.KeyWrite {
		t.Fatalf("meta key-write mismatch: %+v", out.Translator.KeyWrite)
	}
	if out.Translator.AppendBatch != in.Translator.AppendBatch {
		t.Fatalf("meta append batch = %d", out.Translator.AppendBatch)
	}
}

func TestSegmentInfoRanges(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Policy{SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Append(stagedKW(uint64(i), []byte{1, 2, 3, 4}, 2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(1)
	total := 0
	for _, s := range segs {
		if s.First != next {
			t.Fatalf("segment %s first %d, want %d", filepath.Base(s.Path), s.First, next)
		}
		if s.Last < s.First || s.Records != int(s.Last-s.First+1) {
			t.Fatalf("segment %s range [%d,%d] records %d", filepath.Base(s.Path), s.First, s.Last, s.Records)
		}
		next = s.Last + 1
		total += s.Records
	}
	if total != 30 {
		t.Fatalf("segments cover %d records, want 30", total)
	}
}
