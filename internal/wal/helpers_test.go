package wal

import (
	"dta/internal/core/appendlist"
	"dta/internal/core/keywrite"
	"dta/internal/snapshot"
	"dta/internal/translator"
)

// testMeta is a small but complete deployment geometry.
func testMeta() *Meta {
	return &Meta{Translator: translator.Config{
		KeyWrite:    &keywrite.Config{Slots: 1 << 10, DataSize: 4},
		Append:      &appendlist.Config{Lists: 4, EntriesPerList: 64, EntrySize: 4},
		AppendBatch: 16,
	}}
}

// testSnapshot is a minimal checkpointable snapshot.
func testSnapshot() *snapshot.Snapshot {
	cfg := keywrite.Config{Slots: 1 << 10, DataSize: 4}
	return &snapshot.Snapshot{
		KeyWrite:    &cfg,
		KeyWriteBuf: make([]byte, cfg.BufferSize()),
	}
}
