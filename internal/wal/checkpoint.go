package wal

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"dta/internal/snapshot"
	"dta/internal/translator"
	"dta/internal/wire"
)

// Checkpoint file names. Both live next to the segments and are written
// atomically (temp + rename) so a crash mid-checkpoint leaves the
// previous one intact.
const (
	checkpointName = "checkpoint.snap"
	metaName       = "wal.meta"
)

// WriteCheckpoint persists a checkpoint: a snapshot of the collector's
// stores whose WALLSN field records the log position the image covers.
// Records at or below WALLSN become redundant; TruncateBelow reclaims
// the segments wholly covered by them.
func WriteCheckpoint(dir string, snap *snapshot.Snapshot) error {
	if snap.WALLSN == 0 {
		return fmt.Errorf("wal: checkpoint snapshot has no WALLSN")
	}
	return writeAtomic(filepath.Join(dir, checkpointName), func(f *os.File) error {
		return snap.Write(f)
	})
}

// LoadCheckpoint reads the checkpoint, or returns (nil, nil) when none
// has been written.
func LoadCheckpoint(dir string) (*snapshot.Snapshot, error) {
	f, err := os.Open(filepath.Join(dir, checkpointName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return snapshot.Read(f)
}

// TruncateBelow removes segments whose every record is at or below lsn
// (their successor segment's base LSN is <= lsn+1, so no record above
// lsn is lost). The segment containing lsn itself is retained: records
// are only reclaimed in whole segments. Returns the number of segment
// files removed.
func TruncateBelow(dir string, lsn uint64) (removed int, err error) {
	bases, err := segBases(dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(bases); i++ {
		// Everything in segment i is below the next segment's base.
		if bases[i+1] > lsn+1 {
			break
		}
		if err := os.Remove(filepath.Join(dir, segName(bases[i]))); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// Recover is the one canonical recovery sequence over a log directory:
// truncate any torn tail, load the checkpoint (if present) and hand it
// to restore, then stream the log records above it to apply. It returns
// the last LSN restored — the checkpoint's when the tail holds nothing
// newer, 0 for an empty log. Callers supply restore (typically an
// internal/ha.Resync of the image into fresh stores) and apply
// (typically translator.ProcessStaged).
//
// A record whose apply fails is SKIPPED and counted, not fatal: the
// log records admission, and the live pipeline also processed such a
// report, failed identically, and moved on (engine workers count sink
// errors and continue) — aborting would let one rejected report hold
// every later acknowledged record hostage on every recovery attempt.
// Log damage (Replay's own errors) still aborts.
func Recover(dir string,
	restore func(ck *snapshot.Snapshot) error,
	apply func(lsn, nowNs uint64, rec *wire.StagedReport) error,
) (last uint64, skipped int, err error) {
	if _, err := RepairTail(dir); err != nil {
		return 0, 0, err
	}
	from := uint64(1)
	ck, err := LoadCheckpoint(dir)
	if err != nil {
		return 0, 0, err
	}
	if ck != nil {
		if err := restore(ck); err != nil {
			return 0, 0, fmt.Errorf("wal: recover checkpoint: %w", err)
		}
		from = ck.WALLSN + 1
	}
	last, err = Replay(dir, from, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
		if err := apply(lsn, nowNs, rec); err != nil {
			skipped++
		}
		return nil
	})
	if err != nil {
		return 0, skipped, err
	}
	if ck != nil && last < ck.WALLSN {
		last = ck.WALLSN
	}
	return last, skipped, nil
}

// Meta records the deployment geometry a log was written under, so a
// standalone reader (dtaquery -wal, dta.RecoverSystem) can rebuild the
// collector and translator the records replay through. It is exactly
// the translator's configuration: the collector's store geometries are
// the same four configs.
type Meta struct {
	Translator translator.Config
}

// SaveMeta writes the geometry next to the segments (atomic).
func SaveMeta(dir string, m *Meta) error {
	return writeAtomic(filepath.Join(dir, metaName), func(f *os.File) error {
		return gob.NewEncoder(f).Encode(m)
	})
}

// LoadMeta reads the geometry, or returns (nil, nil) when none exists.
func LoadMeta(dir string) (*Meta, error) {
	f, err := os.Open(filepath.Join(dir, metaName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Meta
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("wal: meta: %w", err)
	}
	return &m, nil
}

// writeAtomic writes a file via a temp sibling + rename, fsyncing
// before the swap, so readers only ever see a complete image.
func writeAtomic(path string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
