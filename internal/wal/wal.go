// Package wal is the collector's durability layer: an append-only,
// segmented, CRC-framed operation log recording every admitted DTA
// report at the translator's ingest entry, before primitive processing.
//
// The paper's collectors hold their primitive stores in plain RDMA-
// written memory, so a collector crash loses every store. Logging the
// admitted reports — not the RDMA packets they expand into — keeps the
// record tiny (one compact staged record per report, derived from
// wire.StagedReport's layout) and makes recovery a replay through the
// exact same translator pipeline that built the lost state, so the
// recovered stores, batcher heads and aggregation caches are
// byte-identical to the pre-crash state up to the last durable record
// (exact over admitted reports; with a translator rate limiter the
// replay's fresh token bucket may restore best-effort reports the live
// run shed — see translator.Translator.WAL).
// The log doubles as an exact replication stream: the HA layer ships a
// peer's log suffix to a rejoining collector (see internal/ha), which
// is precise where index-aligned snapshot suffixes are only
// approximate under concurrent producers.
//
// Layout: a directory of segment files named <base-LSN>.wseg, each a
// 16-byte header (magic + base LSN) followed by CRC-framed records:
//
//	[4B CRC-32C][1B body length][1B group bitmap]
//	[uvarint Δns][present 8-byte groups of the staged image][payload]
//
// The body starts from wire.StagedReport's fixed-size EncodeTo image,
// but the frame is aggressively compacted — the log is on the ingest
// hot path, and its cost is dominated by bytes written: the LSN is
// implicit (records are contiguous, so a record's LSN is the segment
// base plus its index), the ingest timestamp is a varint delta from
// the previous record, and all-zero 8-byte groups of the fixed image
// (most of it, for any single primitive) are elided via the bitmap. A
// Key-Write record with a 4-byte value costs ~36 bytes instead of the
// naive ~68. The CRC covers everything after itself, so a torn tail, a
// truncated segment or a bit flip is detected at the first damaged
// record and recovery stops exactly there. A checkpoint (snapshot
// image + LSN, see Checkpoint) bounds replay and lets segments wholly
// below the checkpoint LSN be reclaimed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
	"dta/internal/wire"
)

// SyncMode selects when the writer fsyncs, trading ingest cost for
// recovery-point objective (RPO).
type SyncMode int

const (
	// SyncNone never fsyncs on the data path: the OS flushes when it
	// pleases. Cheapest; a host crash can lose everything since the last
	// Sync/Checkpoint/Close. A process crash alone loses at most the
	// writer's buffered tail (the OS still holds flushed pages).
	SyncNone SyncMode = iota
	// SyncInterval fsyncs when at least Policy.Interval has elapsed
	// since the last sync, bounding the RPO by the interval.
	SyncInterval
	// SyncBatch fsyncs at every ingest batch boundary (each engine
	// worker dequeue batch; every Flush on the synchronous path), so an
	// acknowledged batch is durable. Strongest; pays one fsync per batch.
	SyncBatch
)

func (m SyncMode) String() string {
	switch m {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncBatch:
		return "batch"
	default:
		return fmt.Sprintf("syncmode(%d)", int(m))
	}
}

// File is the writer's view of one segment file: the subset of *os.File
// the flusher uses. Fault-injection layers (internal/chaos) wrap the
// real file behind it via Policy.WrapFile; production runs pay nothing
// (the interface call on a raw *os.File devirtualises next to the
// syscall it fronts, and every call is already off the ingest path).
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Policy configures a Writer.
type Policy struct {
	// Mode selects the sync policy (default SyncNone).
	Mode SyncMode
	// Interval is the SyncInterval period (0 = 100ms).
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size (0 = 64 MiB). Smaller segments reclaim space in
	// finer checkpoint increments but cost more rotations (each one
	// finalises a file).
	SegmentBytes int64
	// WrapFile, when set, wraps every segment file the flusher opens —
	// the fault-injection hook (slow or dead disks, short writes). nil
	// uses the file directly.
	WrapFile func(*os.File) File
	// DegradeFsync, when > 0, bounds tolerated fsync latency: once
	// degradeEnterAfter consecutive data-path fsyncs exceed it, the
	// writer enters degraded-ack mode — Sync requests are acknowledged
	// at the flush (OS write) barrier without fsyncing, counted in
	// Stats.DegradedAcks, and DurableLSN stops advancing — instead of
	// stalling ingest behind a sick disk. Every degradeProbeEvery-th
	// Sync request still fsyncs as a probe; a probe back under the
	// bound exits degraded mode. Both transitions are journaled
	// (EvWALDegradeEnter/Exit). 0 disables degradation: every Sync
	// fsyncs, however slow the disk (the pre-chaos behaviour).
	DegradeFsync time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Interval <= 0 {
		p.Interval = 100 * time.Millisecond
	}
	if p.SegmentBytes <= 0 {
		p.SegmentBytes = 64 << 20
	}
	return p
}

// ParsePolicy parses a CLI policy spec: "none", "batch", "interval" or
// "interval=DURATION" (e.g. "interval=50ms").
func ParsePolicy(s string) (Policy, error) {
	mode, arg, _ := strings.Cut(strings.TrimSpace(s), "=")
	switch mode {
	case "none", "":
		return Policy{Mode: SyncNone}, nil
	case "batch", "every-batch":
		return Policy{Mode: SyncBatch}, nil
	case "interval":
		p := Policy{Mode: SyncInterval}
		if arg != "" {
			d, err := time.ParseDuration(arg)
			if err != nil || d <= 0 {
				return Policy{}, fmt.Errorf("wal: bad sync interval %q", arg)
			}
			p.Interval = d
		}
		return p, nil
	default:
		return Policy{}, fmt.Errorf("wal: unknown sync policy %q (want none, interval[=d] or batch)", s)
	}
}

// Record framing constants.
const (
	// recordHeaderLen frames every record: CRC, body length, group
	// bitmap. The varint timestamp delta and the group/payload bytes
	// follow as the body.
	recordHeaderLen = 4 + 1 + 1
	// stagedGroups is the staged image's fixed block in 8-byte groups.
	stagedGroups = wire.StagedFixedLen / 8
	// MaxRecordLen bounds one framed record.
	MaxRecordLen = recordHeaderLen + binary.MaxVarintLen64 + wire.MaxStagedEncodedLen

	// segHeaderLen is the per-segment file header: magic + base LSN.
	segHeaderLen = 8 + 8
	// segSuffix names segment files; the stem is the base LSN in
	// zero-padded hex so lexical order is LSN order.
	segSuffix = ".wseg"
)

var segMagic = [8]byte{'D', 'T', 'A', 'W', 'A', 'L', '0', '1'}

// castagnoli frames records with CRC-32C (hardware-accelerated on
// amd64/arm64, so framing costs ~1ns per record).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segName(base uint64) string {
	return fmt.Sprintf("%016x%s", base, segSuffix)
}

func segBase(name string) (uint64, bool) {
	stem, ok := strings.CutSuffix(name, segSuffix)
	if !ok || len(stem) != 16 {
		return 0, false
	}
	base, err := strconv.ParseUint(stem, 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// segBases lists the directory's segment base LSNs in ascending order.
// A directory that does not exist yet is an empty log, not an error:
// readers (Recover, Segments, Bounds) run before any writer has created
// it.
func segBases(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range ents {
		if base, ok := segBase(e.Name()); ok {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// Stats snapshots a writer's activity. It is a view over the writer's
// obs counters — the same cells back the Prometheus exposition.
type Stats struct {
	// LastLSN is the highest LSN appended (0 = empty log).
	LastLSN uint64
	// DurableLSN is the highest LSN guaranteed on stable storage.
	DurableLSN uint64
	// Appends, Syncs and Rotations count operations since Open.
	Appends   uint64
	Syncs     uint64
	Rotations uint64
	// Bytes counts log bytes appended since Open (excluding headers of
	// pre-existing segments).
	Bytes uint64
	// RingHighWater is the deepest SPSC ring occupancy observed — how
	// close the flusher has come to stalling ingest. At the ring size
	// (8192) Append blocks.
	RingHighWater uint64
	// RingStalls counts Appends that found the ring full and had to
	// wait for the flusher — the slow-disk backpressure signal.
	RingStalls uint64
	// NudgesDropped counts flusher wakeups coalesced into an already-
	// pending nudge. High values are normal under load (the flusher was
	// awake anyway); they matter when correlated with ring stalls on a
	// slow disk.
	NudgesDropped uint64
	// DegradedAcks counts Sync requests acknowledged at the flush
	// barrier without an fsync while the writer was in degraded-ack
	// mode (Policy.DegradeFsync).
	DegradedAcks uint64
	// Degraded reports whether the writer is currently in degraded-ack
	// mode.
	Degraded bool
	// FailedErrno is the errno of the flusher's sticky failure (0 =
	// healthy, -1 = failed with a non-errno error).
	FailedErrno int64
}

// walCounters is the live metric storage behind Stats. Appender-side
// cells (appends, stalls, HWM) are single-writer; flusher-side cells
// (syncs, rotations, bytes) are single-writer on the flusher goroutine;
// nudgesDropped is bumped by whichever goroutine nudges. All are
// atomics, so WStats and the exposition read them concurrently.
type walCounters struct {
	appends       *obs.Counter
	syncs         *obs.Counter
	rots          *obs.Counter
	bytes         *obs.Counter
	ringStalls    *obs.Counter
	nudgesDropped *obs.Counter
	degradedAcks  *obs.Counter
	ringHWM       *obs.Gauge
	flushNs       *obs.Histogram // write-behind buffer drain to the OS
	fsyncNs       *obs.Histogram
}

func newWALCounters(sc *obs.Scope) walCounters {
	return walCounters{
		appends:       sc.Counter("dta_wal_appends_total", "Records accepted into the WAL ring."),
		syncs:         sc.Counter("dta_wal_syncs_total", "Segment fsyncs."),
		rots:          sc.Counter("dta_wal_rotations_total", "Segment rotations."),
		bytes:         sc.Counter("dta_wal_bytes_total", "Log bytes appended."),
		ringStalls:    sc.Counter("dta_wal_ring_stalls_total", "Appends that found the SPSC ring full and blocked on the flusher."),
		nudgesDropped: sc.Counter("dta_wal_nudges_dropped_total", "Flusher wakeups coalesced into an already-pending nudge."),
		degradedAcks:  sc.Counter("dta_wal_degraded_acks_total", "Sync requests acknowledged without fsync in degraded-ack mode."),
		ringHWM:       sc.Gauge("dta_wal_ring_high_water", "Deepest SPSC ring occupancy observed (ring size 8192)."),
		flushNs:       sc.Histogram("dta_wal_flush_ns", "Nanoseconds per write-behind buffer drain to the OS."),
		fsyncNs:       sc.Histogram("dta_wal_fsync_ns", "Nanoseconds per segment fsync."),
	}
}

// Writer appends records to a segmented log. It is single-writer: the
// owning translator's ingest context (one engine shard worker, or the
// synchronous caller) appends; LastLSN/DurableLSN are safe to read from
// other goroutines (the HA layer snapshots watermarks concurrently).
//
// The ingest-path contract is "one bounded copy, nothing else": Append
// places a copy of the staged record into a lock-free single-producer /
// single-consumer ring and returns. A background flusher goroutine
// consumes the ring and does ALL the heavy lifting — frame encoding,
// CRC, buffered OS writes, segment rotation and fsyncs — so none of it
// rides the ingest hot path (an engine shard worker's per-record cost
// lands 1:1 on end-to-end throughput; a syscall there stalls the worker
// AND every producer behind its bounded queue). Sync/Flush are barriers
// that wait for the flusher to catch up; a full ring blocks Append — the
// natural backpressure when the disk cannot keep up with ingest.
type Writer struct {
	dir string
	pol Policy

	// SPSC ring: Append (producer) copies records in and bumps head;
	// the flusher (consumer) encodes them out and bumps tail.
	ring []ringEntry
	head atomic.Uint64 // records ever enqueued
	tail atomic.Uint64 // records ever consumed

	startLSN uint64        // LSN of the first record this Writer appends
	durable  atomic.Uint64 // last LSN fsynced
	lastSync time.Time

	// wake nudges an idle flusher (sent only on empty→non-empty);
	// space signals a blocked appender (sent only on full→not-full);
	// ctrl carries barrier requests; done closes when the flusher exits.
	wake  chan struct{}
	space chan struct{}
	ctrl  chan ctrlReq
	quit  chan struct{}
	done  chan struct{}

	flushErr atomic.Pointer[error]
	// failedErrno mirrors the sticky failure's errno for the health
	// exposition (0 = healthy, -1 = non-errno failure).
	failedErrno atomic.Int64
	closed      bool

	// degraded flags degraded-ack mode (Policy.DegradeFsync): set and
	// cleared by the flusher, read by Stats and the exposition.
	degraded atomic.Bool

	ctr walCounters

	// jr publishes segment-lifecycle events (rotations, flusher
	// failure) to the flight recorder; jrCause chains them so the log's
	// whole segment history renders as one timeline. Set via SetJournal
	// before ingest starts; the zero value is a no-op.
	jr      journal.Emitter
	jrCause uint64

	// Flusher-owned state (no appender access after Create).
	f        File
	buf      []byte // write-behind buffer
	segBytes int64
	prevNow  uint64 // previous record's timestamp (delta encoding)
	scratch  [MaxRecordLen]byte
	// Trace handles in flight through the flusher: pendWrite holds
	// encoded-but-buffered records' handles, unsynced holds handles
	// whose bytes reached the OS but not yet stable storage. Both hold
	// only valid handles, so their length is bounded by the tracer's
	// in-flight pool, not the ring. Flusher-owned.
	pendWrite []trace.Handle
	unsynced  []trace.Handle
	// Degraded-ack bookkeeping, flusher-owned: consecutive over-bound
	// fsyncs (entry trigger), Sync requests seen while degraded (probe
	// pacing) and acks skipped since entry (Exit event payload).
	overBound    int
	degradedReqs int
	degradedSkip uint64
}

// ringEntry is one in-flight record awaiting encoding.
type ringEntry struct {
	rec   wire.StagedReport
	nowNs uint64
	trc   trace.Handle // data-plane trace (invalid when untraced)
}

// ctrlReq asks the flusher to catch up to `upto` consumed records, push
// everything to the OS, optionally fsync, and ack.
type ctrlReq struct {
	upto  uint64
	fsync bool
	// force bypasses degraded-ack mode: Close must leave a truly
	// durable log behind, however sick the disk.
	force bool
	ack   chan error
}

const (
	// writerRingEntries bounds in-flight (unencoded) records; at ~120 B
	// each the ring is ~1 MiB per collector.
	writerRingEntries = 8192
	// writerBufBytes sizes the flusher's write-behind buffer (one OS
	// write per ~2k records at Key-Write record sizes).
	writerBufBytes = 64 << 10

	// Degraded-ack pacing (Policy.DegradeFsync): enter after this many
	// consecutive data-path fsyncs over the bound — one slow fsync is
	// noise, a run of them is a sick disk; while degraded, every Nth
	// Sync request still fsyncs as a recovery probe.
	degradeEnterAfter = 3
	degradeProbeEvery = 8
)

// Create initialises dir (creating it if needed) and opens a Writer
// positioned after the last valid record. An existing torn tail is
// truncated away first, so appends always extend a clean prefix.
func Create(dir string, pol Policy) (*Writer, error) {
	return CreateScoped(dir, pol, nil)
}

// CreateScoped is Create with the writer's metrics (dta_wal_*)
// registered under the given obs scope. A nil scope keeps the counters
// behind WStats live but unexposed, and disables the flush/fsync
// latency histograms.
func CreateScoped(dir string, pol Policy, sc *obs.Scope) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := RepairTail(dir); err != nil {
		return nil, err
	}
	bases, err := segBases(dir)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		dir:      dir,
		pol:      pol.withDefaults(),
		ring:     make([]ringEntry, writerRingEntries),
		lastSync: time.Now(),
		wake:     make(chan struct{}, 1),
		space:    make(chan struct{}, 1),
		ctrl:     make(chan ctrlReq, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		buf:      make([]byte, 0, writerBufBytes),
		ctr:      newWALCounters(sc),
	}
	// Watermarks and ring occupancy are read straight off the writer's
	// atomics at exposition time — zero data-path cost.
	sc.GaugeFunc("dta_wal_last_lsn", "Highest LSN appended.",
		func() float64 { return float64(w.LastLSN()) })
	sc.GaugeFunc("dta_wal_durable_lsn", "Highest LSN guaranteed on stable storage.",
		func() float64 { return float64(w.DurableLSN()) })
	sc.GaugeFunc("dta_wal_ring_occupancy", "Records currently buffered in the SPSC ring.",
		func() float64 { return float64(w.head.Load() - w.tail.Load()) })
	sc.GaugeFunc("dta_wal_degraded", "1 while the writer is in degraded-ack mode (fsyncs over Policy.DegradeFsync).",
		func() float64 {
			if w.degraded.Load() {
				return 1
			}
			return 0
		})
	sc.GaugeFunc("dta_wal_failed_errno", "Errno of the flusher's sticky failure (0 = healthy, -1 = non-errno error).",
		func() float64 { return float64(w.failedErrno.Load()) })
	next := uint64(1)
	if len(bases) > 0 {
		last := bases[len(bases)-1]
		info, err := scanSegment(filepath.Join(dir, segName(last)), last)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = w.wrap(f)
		if info.Records > 0 {
			// Force a fresh segment for the first new record: timestamp
			// deltas are per-segment and the old tail's last timestamp
			// is not tracked across runs, so appending mid-segment would
			// decode the first new record's time wrong. The open handle
			// just lets rotate finalise the old tail normally.
			next = info.Last + 1
			w.segBytes = w.pol.SegmentBytes
		} else {
			// Header-only tail (a crash right after rotation): continue
			// inside it — it holds no timestamps to clash with.
			next = last
			w.segBytes = info.Bytes
		}
	} else if ck, err := LoadCheckpoint(dir); err != nil {
		return nil, err
	} else if ck != nil {
		// All segments were reclaimed by the checkpoint: continue the
		// LSN sequence after it instead of restarting at 1.
		next = ck.WALLSN + 1
	}
	w.startLSN = next
	w.durable.Store(next - 1)
	go w.flusher()
	return w, nil
}

// SetJournal threads the flight recorder into the writer. Call it
// right after Create, before the first Append: the flusher goroutine
// only touches the emitter when processing records, and the first
// record's publication happens-after this store.
func (w *Writer) SetJournal(e journal.Emitter) {
	w.jr = e
	w.jrCause = e.NewCause()
}

// err surfaces the first flusher failure into the appender's control
// flow: once the log can no longer persist, every subsequent operation
// fails rather than silently acknowledging unlogged reports.
func (w *Writer) err() error {
	if p := w.flushErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Dir returns the log directory.
func (w *Writer) Dir() string { return w.dir }

// Policy returns the writer's sync policy.
func (w *Writer) Policy() Policy { return w.pol }

// LastLSN returns the highest LSN appended (0 = nothing logged). Safe
// to call concurrently with Append.
func (w *Writer) LastLSN() uint64 { return w.startLSN + w.head.Load() - 1 }

// DurableLSN returns the highest LSN guaranteed on stable storage. Safe
// to call concurrently with Append.
func (w *Writer) DurableLSN() uint64 { return w.durable.Load() }

// WStats snapshots the writer's counters. Safe to call concurrently
// with Append and the flusher (the cells are atomics).
func (w *Writer) WStats() Stats {
	return Stats{
		LastLSN:       w.LastLSN(),
		DurableLSN:    w.DurableLSN(),
		Appends:       w.ctr.appends.Load(),
		Syncs:         w.ctr.syncs.Load(),
		Rotations:     w.ctr.rots.Load(),
		Bytes:         w.ctr.bytes.Load(),
		RingHighWater: uint64(w.ctr.ringHWM.Load()),
		RingStalls:    w.ctr.ringStalls.Load(),
		NudgesDropped: w.ctr.nudgesDropped.Load(),
		DegradedAcks:  w.ctr.degradedAcks.Load(),
		Degraded:      w.degraded.Load(),
		FailedErrno:   w.failedErrno.Load(),
	}
}

// Append logs one staged report with its ingest timestamp and returns
// the assigned LSN. The record is copied into the flusher ring — one
// bounded memmove, no encoding, no CRC, no syscalls — so the ingest
// path pays tens of nanoseconds regardless of sync policy; a full ring
// (the flusher lagging by writerRingEntries records) blocks until space
// frees, which is the intended backpressure.
func (w *Writer) Append(rec *wire.StagedReport, nowNs uint64) (uint64, error) {
	return w.AppendTraced(rec, nowNs, trace.Handle{})
}

// AppendTraced is Append carrying the report's data-plane trace: the
// WAL takes shared trace ownership (the flusher finishes it at the
// durable-ack boundary), stamps the ring-entry stage, and flags the
// trace on a ring-full backpressure stall. The invalid handle reduces
// to plain Append.
func (w *Writer) AppendTraced(rec *wire.StagedReport, nowNs uint64, th trace.Handle) (uint64, error) {
	if err := w.err(); err != nil {
		return 0, err
	}
	if w.closed {
		return 0, fmt.Errorf("wal: writer closed")
	}
	h := w.head.Load()
	if h-w.tail.Load() == uint64(len(w.ring)) {
		// Full ring: the flusher is lagging a whole ring behind — the
		// slow-disk stall the ROADMAP's chaos scenarios suspect. Count
		// it (once per stalled append), then wait.
		w.ctr.ringStalls.Inc()
		th.Flag(trace.FStall)
		for h-w.tail.Load() == uint64(len(w.ring)) {
			w.nudge()
			select {
			case <-w.space:
			case <-w.done:
				return 0, w.err()
			}
		}
	}
	e := &w.ring[h&uint64(len(w.ring)-1)]
	e.rec = *rec
	e.nowNs = nowNs
	// e.trc is assigned unconditionally: a recycled ring slot must never
	// carry a previous lap's handle.
	if th.OwnWAL() {
		th.Stamp(trace.StWALRing)
		e.trc = th
	} else {
		e.trc = trace.Handle{}
	}
	w.head.Store(h + 1)
	w.ctr.appends.Inc()
	// Wake the flusher if it may have gone (or be going) idle: reading
	// tail AFTER publishing head closes the sleep race — a flusher that
	// decided to sleep had consumed everything before this record, so
	// its tail advance is visible here and the nudge fires.
	tail := w.tail.Load()
	if tail >= h {
		w.nudge()
	}
	// The tail load above doubles as the occupancy sample for the ring
	// high-water mark (the common case is one relaxed load, no write).
	w.ctr.ringHWM.SetMax(int64(h + 1 - tail))
	if w.pol.Mode == SyncInterval && time.Since(w.lastSync) >= w.pol.Interval {
		return w.startLSN + h, w.Sync()
	}
	return w.startLSN + h, nil
}

// nudge wakes an idle flusher (non-blocking: a pending wake suffices —
// coalesced nudges are counted, not lost).
func (w *Writer) nudge() {
	select {
	case w.wake <- struct{}{}:
	default:
		w.ctr.nudgesDropped.Inc()
	}
}

// barrier waits until the flusher has consumed, encoded and written to
// the OS every record appended so far, optionally fsyncing the segment
// (force bypasses degraded-ack mode).
func (w *Writer) barrier(fsync, force bool) error {
	if w.closed {
		return w.err()
	}
	ack := make(chan error, 1)
	w.ctrl <- ctrlReq{upto: w.head.Load(), fsync: fsync, force: force, ack: ack}
	w.nudge()
	return <-ack
}

// Flush pushes every appended record to the OS without fsyncing: after
// it returns, readers of the segment files observe every appended
// record (the log-shipping resync path reads peers' logs this way).
func (w *Writer) Flush() error { return w.barrier(false, false) }

// Sync makes every appended record durable: buffered records are
// encoded, written out and the segment fsynced. DurableLSN has advanced
// to (at least) the pre-call LastLSN when Sync returns — unless the
// writer is in degraded-ack mode (Policy.DegradeFsync), where the
// barrier acknowledges at the OS-write boundary, counts the skipped
// fsync in Stats.DegradedAcks, and DurableLSN holds still.
func (w *Writer) Sync() error {
	err := w.barrier(true, false)
	w.lastSync = time.Now()
	return err
}

// CommitBatch marks an ingest batch boundary: it fsyncs under
// SyncBatch, fsyncs under SyncInterval when the interval has elapsed,
// and is a no-op under SyncNone (the background flusher paces the OS
// writes). The engine's shard workers call it after every dequeue
// batch; the synchronous path calls it from Flush.
func (w *Writer) CommitBatch() error {
	switch w.pol.Mode {
	case SyncBatch:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.pol.Interval {
			return w.Sync()
		}
	}
	return nil
}

// Close syncs and closes the log, stopping the flusher. The writer is
// unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	// Forced sync: even a degraded writer fsyncs on Close, so a clean
	// shutdown always leaves a fully durable log.
	err := w.barrier(true, true)
	w.closed = true
	close(w.quit)
	w.nudge()
	<-w.done
	if cerr := w.err(); err == nil {
		err = cerr
	}
	return err
}

// flusher is the background half of the writer: it consumes the ring,
// frames records (varint timestamp delta + zero-elided groups + CRC),
// batches them through the write-behind buffer, rotates segments and
// performs every fsync. All file state is flusher-owned after Create.
func (w *Writer) flusher() {
	defer close(w.done)
	defer func() {
		if w.f != nil {
			w.writeOut()
			w.f.Close()
		}
		// Any trace still in flight here never reached its durable ack
		// (failure or shutdown race): discard, never publish a phantom.
		for _, th := range w.pendWrite {
			th.Abort()
		}
		for _, th := range w.unsynced {
			th.Abort()
		}
		w.pendWrite, w.unsynced = nil, nil
	}()
	var pending *ctrlReq
	idle := time.NewTimer(time.Hour)
	defer idle.Stop()
	for {
		// Drain whatever is in the ring. Once the log has failed,
		// records are consumed and discarded — the appender sees the
		// error on its next call; blocking it forever would wedge the
		// whole ingest pipeline behind a dead disk.
		t := w.tail.Load()
		h := w.head.Load()
		for i := t; i < h; i++ {
			e := &w.ring[i&uint64(len(w.ring)-1)]
			if w.err() == nil {
				w.fail(w.encode(e))
			}
			if e.trc.Valid() {
				if w.err() == nil {
					w.pendWrite = append(w.pendWrite, e.trc)
				} else {
					// Failed log: the record was consumed and discarded,
					// so no durable ack will ever come.
					e.trc.Abort()
				}
				e.trc = trace.Handle{}
			}
			w.tail.Store(i + 1)
			// Unconditional (non-blocking, coalescing) space signal: an
			// appender may have seen the ring full against a head far
			// past our snapshot, so no local occupancy check can decide
			// whether one is waiting.
			select {
			case w.space <- struct{}{}:
			default:
			}
		}
		if pending == nil {
			select {
			case req := <-w.ctrl:
				pending = &req
			default:
			}
		}
		if pending != nil && (w.tail.Load() >= pending.upto || w.err() != nil) {
			w.fail(w.writeOut())
			if pending.fsync && w.f != nil && w.err() == nil {
				w.syncPoint(pending.force)
			}
			pending.ack <- w.err()
			pending = nil
		}
		if w.tail.Load() == w.head.Load() && pending == nil {
			// Idle: push the buffer to the OS (bounding staleness for
			// log-shipping readers), then sleep until nudged. The
			// appender's publish-then-check-tail ordering guarantees a
			// nudge for the record that races this sleep decision; the
			// long timer is a belt-and-suspenders bound, not a poll.
			w.fail(w.writeOut())
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(time.Second)
			select {
			case <-w.wake:
			case <-idle.C:
			case <-w.quit:
				if w.tail.Load() == w.head.Load() {
					return
				}
			}
		}
	}
}

// fail boxes the first flusher error into the sticky flushErr, mirrors
// its errno for the health exposition and journals it; later calls only
// report err != nil. Flusher-only.
func (w *Writer) fail(err error) bool {
	if err == nil {
		return false
	}
	// Box on the error path only: taking the parameter's address
	// would heap-allocate it on every (overwhelmingly nil) call.
	boxed := err
	if w.flushErr.CompareAndSwap(nil, &boxed) {
		// First failure only: the log just went sticky-dead. Carry the
		// underlying errno (0 when the cause is not a syscall error) so
		// the timeline and the health rule can name the disk's failure.
		var errno syscall.Errno
		if errors.As(err, &errno) {
			w.failedErrno.Store(int64(errno))
			w.jr.Emit(journal.EvWALError, journal.SevError, w.jrCause, uint64(errno), 0, 0)
		} else {
			w.failedErrno.Store(-1)
			w.jr.Emit(journal.EvWALError, journal.SevError, w.jrCause, 0, 0, 0)
		}
	}
	return true
}

// wrap applies the policy's fault-injection hook to a freshly opened
// segment file.
func (w *Writer) wrap(f *os.File) File {
	if w.pol.WrapFile != nil {
		return w.pol.WrapFile(f)
	}
	return f
}

// syncPoint serves one Sync barrier at the flusher: a measured fsync in
// the healthy case, a counted skip in degraded-ack mode (force — Close —
// always fsyncs). Flusher-only.
func (w *Writer) syncPoint(force bool) {
	if w.degraded.Load() && !force {
		w.degradedReqs++
		if w.degradedReqs%degradeProbeEvery != 0 {
			// Degraded ack: the barrier's writeOut already pushed the
			// records to the OS; DurableLSN intentionally holds still.
			w.ctr.degradedAcks.Inc()
			w.degradedSkip++
			w.finishUnsynced(true)
			return
		}
		// Every degradeProbeEvery-th request falls through to a real
		// fsync — the recovery probe.
	}
	t0 := obs.Nanotime()
	span := obs.Start(w.ctr.fsyncNs)
	err := w.f.Sync()
	// The newest trace covered by this fsync becomes the fsync
	// histogram's bucket exemplar.
	var exID uint64
	if n := len(w.unsynced); n > 0 {
		exID = w.unsynced[n-1].ID()
	}
	span.EndExemplar(exID)
	ns := obs.Nanotime() - t0
	w.ctr.syncs.Inc()
	if w.fail(err) {
		w.abortUnsynced()
		return
	}
	w.durable.Store(w.startLSN + w.tail.Load() - 1)
	w.finishUnsynced(false)
	w.observeFsync(ns)
}

// observeFsync advances the degraded-ack state machine on one measured
// data-path fsync. Flusher-only.
func (w *Writer) observeFsync(ns int64) {
	bound := int64(w.pol.DegradeFsync)
	if bound <= 0 {
		return
	}
	if w.degraded.Load() {
		if ns <= bound {
			// The probe came back under the bound: the disk healed.
			w.degraded.Store(false)
			w.overBound = 0
			w.jr.Emit(journal.EvWALDegradeExit, journal.SevInfo, w.jrCause, uint64(ns), w.degradedSkip, 0)
			w.degradedSkip = 0
			w.degradedReqs = 0
		}
		return
	}
	if ns <= bound {
		w.overBound = 0
		return
	}
	w.overBound++
	if w.overBound >= degradeEnterAfter {
		w.degraded.Store(true)
		w.degradedReqs = 0
		w.degradedSkip = 0
		w.jr.Emit(journal.EvWALDegradeEnter, journal.SevWarn, w.jrCause, uint64(ns), uint64(bound), 0)
	}
}

// encode frames one ring entry into the write-behind buffer, rotating
// segments as needed.
func (w *Writer) encode(e *ringEntry) error {
	if w.f == nil || w.segBytes >= w.pol.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	b := w.scratch[:]
	off := recordHeaderLen
	off += binary.PutVarint(b[off:], int64(e.nowNs-w.prevNow))
	n, bitmap := e.rec.EncodeGroupsTo(b[off:])
	total := off + n
	b[4] = byte(total - recordHeaderLen)
	b[5] = bitmap
	binary.BigEndian.PutUint32(b[0:4], crc32.Checksum(b[4:total], castagnoli))
	w.prevNow = e.nowNs
	if len(w.buf)+total > cap(w.buf) {
		if err := w.writeOut(); err != nil {
			return err
		}
	}
	w.buf = append(w.buf, b[:total]...)
	w.segBytes += int64(total)
	w.ctr.bytes.Add(uint64(total))
	return nil
}

// writeOut drains the write-behind buffer to the OS.
func (w *Writer) writeOut() error {
	if len(w.buf) == 0 || w.f == nil {
		return nil
	}
	span := obs.Start(w.ctr.flushNs)
	err := writeFull(w.f, w.buf)
	span.End()
	w.buf = w.buf[:0]
	w.noteWritten(err == nil)
	return err
}

// noteWritten routes the pending trace handles after a write-behind
// drain: written records advance to the unsynced set awaiting their
// fsync (or finish immediately under SyncNone, which never fsyncs on
// the data path); a failed write orphans them unpublished. Flusher-only.
func (w *Writer) noteWritten(ok bool) {
	if len(w.pendWrite) == 0 {
		return
	}
	for _, th := range w.pendWrite {
		if !ok {
			th.Abort()
			continue
		}
		th.Stamp(trace.StWALWrite)
		if w.pol.Mode == SyncNone {
			th.Finish()
			continue
		}
		w.unsynced = append(w.unsynced, th)
	}
	w.pendWrite = w.pendWrite[:0]
}

// finishUnsynced completes every trace awaiting durability: a real
// fsync stamps the fsync stage, a degraded ack flags the trace instead
// (tail sampling keeps it — that IS the interesting trace). Both end
// at the ack stage. Flusher-only.
func (w *Writer) finishUnsynced(degraded bool) {
	for _, th := range w.unsynced {
		if degraded {
			th.Flag(trace.FDegraded)
		} else {
			th.Stamp(trace.StFsync)
		}
		th.Stamp(trace.StAck)
		th.Finish()
	}
	w.unsynced = w.unsynced[:0]
}

// abortUnsynced discards every trace awaiting durability (the fsync
// failed: no ack will ever come). Flusher-only.
func (w *Writer) abortUnsynced() {
	for _, th := range w.unsynced {
		th.Abort()
	}
	w.unsynced = w.unsynced[:0]
}

// writeFull writes p to f completely, absorbing partial progress
// (io.ErrShortWrite with bytes written, e.g. an injected short-write
// fault or an interrupted write) by retrying the remainder. A
// zero-progress short write fails rather than spinning.
func writeFull(f File, p []byte) error {
	for off := 0; off < len(p); {
		n, err := f.Write(p[off:])
		off += n
		if err == io.ErrShortWrite && n > 0 {
			continue
		}
		if err == nil && n == 0 {
			err = io.ErrShortWrite
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// rotate finalises the current segment and opens a fresh one whose base
// LSN is the next record's. Flusher-only.
func (w *Writer) rotate() error {
	rotated := w.f != nil
	var fsyncNs int64
	if w.f != nil {
		if err := w.writeOut(); err != nil {
			return err
		}
		// Finalise the outgoing segment with an fsync under EVERY
		// policy (including SyncNone, whose skipped fsyncs are the
		// data-path ones): once closed, the file can never be fsynced
		// by a later Sync(), so skipping here would let Sync advance
		// DurableLSN over records that only the OS holds — a host crash
		// would then lose acknowledged records mid-log. One fsync per
		// SegmentBytes is far off the hot path, and it keeps "every
		// non-tail segment is fully intact on stable storage" an
		// invariant recovery and Sync can both lean on.
		t0 := obs.Nanotime()
		span := obs.Start(w.ctr.fsyncNs)
		err := w.f.Sync()
		span.End()
		fsyncNs = obs.Nanotime() - t0
		if err != nil {
			return err
		}
		w.durable.Store(w.startLSN + w.tail.Load() - 1)
		// The finalising fsync makes every written record durable: any
		// trace still awaiting its ack completes here.
		w.finishUnsynced(false)
		if err := w.f.Close(); err != nil {
			return err
		}
		w.ctr.rots.Inc()
	}
	base := w.startLSN + w.tail.Load()
	f, err := os.OpenFile(filepath.Join(w.dir, segName(base)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	wf := w.wrap(f)
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], base)
	if err := writeFull(wf, hdr[:]); err != nil {
		wf.Close()
		return err
	}
	w.f = wf
	w.segBytes = segHeaderLen
	w.prevNow = 0 // timestamp deltas restart per segment
	if rotated {
		// One event per rotation, carrying the finalising fsync's cost:
		// the rotate→fsync pair the timeline wants, without a second
		// ring slot per rotation.
		w.jr.Emit(journal.EvWALRotate, journal.SevInfo, w.jrCause, base, uint64(fsyncNs), 0)
	}
	return nil
}
