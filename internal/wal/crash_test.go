package wal

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"dta/internal/wire"
)

// crashRecord derives record i's deterministic content, so recovery
// checks can recompute what any LSN must hold.
func crashRecord(i uint64) *wire.StagedReport {
	if i%3 == 0 {
		return stagedAppend(uint32(i%5), []byte{byte(i), byte(i >> 8), 7})
	}
	return stagedKW(i, []byte{byte(i), byte(i >> 8), byte(i >> 16), 9}, 2)
}

func checkCrashRecord(t *testing.T, lsn uint64, rec *wire.StagedReport) {
	t.Helper()
	want := crashRecord(lsn)
	if rec.Primitive() != want.Primitive() {
		t.Fatalf("LSN %d: primitive %v, want %v", lsn, rec.Primitive(), want.Primitive())
	}
	wb := make([]byte, wire.MaxStagedEncodedLen)
	gb := make([]byte, wire.MaxStagedEncodedLen)
	wn := want.EncodeTo(wb)
	gn := rec.EncodeTo(gb)
	if wn != gn || string(wb[:wn]) != string(gb[:gn]) {
		t.Fatalf("LSN %d: record content diverged", lsn)
	}
}

// TestCrashRecoveryProperty kills the writer at a random byte offset —
// torn tail, truncated segment, or a bit-flipped CRC frame — always at
// or past the last durable (fsynced) position, and asserts that
// recovery restores EXACTLY a prefix of the log: contiguous LSNs from
// 1, covering at least every acknowledged (durable) record, each with
// exactly the content that was appended, and that a reopened writer
// continues the sequence where the surviving prefix ends.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			// Small segments so kills regularly land near rotation
			// boundaries (header-only tails, segment-spanning damage).
			w, err := Create(dir, Policy{SegmentBytes: int64(256 + rng.Intn(2048))})
			if err != nil {
				t.Fatal(err)
			}
			records := uint64(20 + rng.Intn(300))
			var durable uint64
			for i := uint64(1); i <= records; i++ {
				if _, err := w.Append(crashRecord(i), i); err != nil {
					t.Fatal(err)
				}
				// Random acknowledgement points: everything up to here
				// must survive any later kill.
				if rng.Intn(16) == 0 {
					if err := w.Sync(); err != nil {
						t.Fatal(err)
					}
					durable = w.DurableLSN()
				}
			}
			// Flush to the OS without fsync: a process kill (as opposed
			// to a host crash) leaves these bytes intact, which is what
			// corrupting the on-disk image below models.
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			w.f.Close() // abandon without Sync: the "kill"

			// Find the durable byte boundary in the tail segment: the
			// offset just past the last durable record (everything in
			// earlier segments is durable — rotation fsyncs).
			segs, err := Segments(dir)
			if err != nil {
				t.Fatal(err)
			}
			tail := segs[len(segs)-1]
			safe := int64(segHeaderLen)
			if durable >= tail.First && tail.Records > 0 {
				b, err := os.ReadFile(tail.Path)
				if err != nil {
					t.Fatal(err)
				}
				off := int64(segHeaderLen)
				prevNow := uint64(0)
				var rec wire.StagedReport
				var img [wire.MaxStagedEncodedLen]byte
				for lsn := tail.First; lsn <= durable && lsn <= tail.Last; lsn++ {
					n, nowNs, err := readRecord(b[off:], prevNow, &img, &rec)
					if err != nil {
						t.Fatal(err)
					}
					prevNow = nowNs
					off += int64(n)
				}
				safe = off
			} else if durable >= tail.First {
				safe = tail.Bytes
			}
			size := tail.Bytes + tail.TornBytes // = file size

			// Corrupt at a random offset in [safe, size].
			kill := safe + rng.Int63n(size-safe+1)
			mode := rng.Intn(3)
			switch {
			case mode == 0 || kill == size: // torn tail: truncate mid-byte-stream
				if err := os.Truncate(tail.Path, kill); err != nil {
					t.Fatal(err)
				}
			case mode == 1: // truncated segment: drop a whole suffix plus slack
				cut := safe + (kill-safe)/2
				if err := os.Truncate(tail.Path, cut); err != nil {
					t.Fatal(err)
				}
			default: // bit flip inside a CRC frame
				b, err := os.ReadFile(tail.Path)
				if err != nil {
					t.Fatal(err)
				}
				b[kill] ^= 1 << uint(rng.Intn(8))
				if err := os.WriteFile(tail.Path, b, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			// Recover: replay must deliver exactly a prefix.
			var got []uint64
			last, err := Replay(dir, 1, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
				if nowNs != lsn {
					t.Fatalf("LSN %d: nowNs %d", lsn, nowNs)
				}
				checkCrashRecord(t, lsn, rec)
				got = append(got, lsn)
				return nil
			})
			if err != nil {
				t.Fatalf("replay after kill at %d/%d (mode %d): %v", kill, size, mode, err)
			}
			for i, lsn := range got {
				if lsn != uint64(i+1) {
					t.Fatalf("non-contiguous prefix: position %d holds LSN %d", i, lsn)
				}
			}
			if last < durable {
				t.Fatalf("acknowledged records lost: recovered to %d, durable was %d (kill at %d, safe %d, mode %d)",
					last, durable, kill, safe, mode)
			}
			if last > records {
				t.Fatalf("recovered %d records, only %d were written", last, records)
			}

			// The log must be writable again after repair, continuing at
			// the surviving prefix's end.
			w2, err := Create(dir, Policy{})
			if err != nil {
				t.Fatal(err)
			}
			lsn, err := w2.Append(crashRecord(last+1), last+1)
			if err != nil {
				t.Fatal(err)
			}
			if lsn != last+1 {
				t.Fatalf("reopened writer assigned LSN %d, want %d", lsn, last+1)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := Replay(dir, 1, func(lsn, _ uint64, rec *wire.StagedReport) error {
				checkCrashRecord(t, lsn, rec)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
