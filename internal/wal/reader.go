package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dta/internal/wire"
)

// ErrCorrupt reports a damaged record before the log's tail: unlike a
// torn tail (which recovery silently truncates), mid-log damage means
// acknowledged records are gone, so it is surfaced, not swallowed.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

// SegmentInfo describes one scanned segment file.
type SegmentInfo struct {
	// Path is the segment file.
	Path string
	// Base is the LSN the segment starts at (from its header).
	Base uint64
	// First and Last bound the valid records found (0/0 when empty).
	First, Last uint64
	// Records counts valid records.
	Records int
	// Bytes is the byte offset just past the last valid record — the
	// truncation point when the tail beyond it is damaged.
	Bytes int64
	// TornBytes counts bytes past the last valid record (0 = clean).
	TornBytes int64
	// Err describes why scanning stopped early (nil = clean EOF).
	Err error
}

// scanSegment walks one segment, validating framing, CRCs and LSN
// contiguity, and returns how far it is intact. Damage is reported in
// the info (TornBytes/Err), not as the error — only I/O and header
// mismatches fail the scan itself.
func scanSegment(path string, wantBase uint64) (SegmentInfo, error) {
	info := SegmentInfo{Path: path, Base: wantBase}
	b, err := os.ReadFile(path)
	if err != nil {
		return info, err
	}
	if len(b) < segHeaderLen {
		info.TornBytes = int64(len(b))
		info.Err = fmt.Errorf("wal: segment header truncated at %dB", len(b))
		return info, nil
	}
	if [8]byte(b[:8]) != segMagic {
		return info, fmt.Errorf("wal: %s: bad magic", path)
	}
	if base := binary.BigEndian.Uint64(b[8:16]); base != wantBase {
		return info, fmt.Errorf("wal: %s: header base LSN %d, name says %d", path, base, wantBase)
	}
	off := int64(segHeaderLen)
	prevNow := uint64(0)
	var rec wire.StagedReport
	var img [wire.MaxStagedEncodedLen]byte
	for {
		n, nowNs, err := readRecord(b[off:], prevNow, &img, &rec)
		if err != nil {
			if err != io.EOF {
				info.Err = err
			}
			break
		}
		if info.Records == 0 {
			info.First = wantBase
		}
		info.Last = wantBase + uint64(info.Records)
		info.Records++
		prevNow = nowNs
		off += int64(n)
	}
	info.Bytes = off
	info.TornBytes = int64(len(b)) - off
	return info, nil
}

// readRecord parses one framed record at the head of b, checking the
// CRC and structural consistency. LSNs are implicit (contiguous within
// a segment); prevNow decodes the timestamp delta. io.EOF means a
// clean end (b empty); any other error describes the damage found.
func readRecord(b []byte, prevNow uint64, img *[wire.MaxStagedEncodedLen]byte, rec *wire.StagedReport) (n int, nowNs uint64, err error) {
	if len(b) == 0 {
		return 0, 0, io.EOF
	}
	if len(b) < recordHeaderLen {
		return 0, 0, fmt.Errorf("wal: record header truncated at %dB", len(b))
	}
	total := recordHeaderLen + int(b[4])
	if len(b) < total {
		return 0, 0, fmt.Errorf("wal: record truncated (%dB of %d)", len(b), total)
	}
	if got, want := crc32.Checksum(b[4:total], castagnoli), binary.BigEndian.Uint32(b[0:4]); got != want {
		return 0, 0, fmt.Errorf("wal: record CRC mismatch (%08x != %08x)", got, want)
	}
	bitmap := b[5]
	if bitmap>>stagedGroups != 0 {
		return 0, 0, fmt.Errorf("wal: record group bitmap %08b out of range", bitmap)
	}
	body := b[recordHeaderLen:total]
	delta, vn := binary.Varint(body)
	if vn <= 0 {
		return 0, 0, fmt.Errorf("wal: record timestamp delta malformed")
	}
	body = body[vn:]
	// Reassemble the fixed staged image: elided groups are zero.
	for i := range img[:wire.StagedFixedLen] {
		img[i] = 0
	}
	for g := 0; g < stagedGroups; g++ {
		if bitmap&(1<<g) == 0 {
			continue
		}
		if len(body) < 8 {
			return 0, 0, fmt.Errorf("wal: record group %d truncated", g)
		}
		copy(img[g*8:], body[:8])
		body = body[8:]
	}
	payload := body
	copy(img[wire.StagedFixedLen:], payload)
	if _, err := wire.DecodeStaged(img[:wire.StagedFixedLen+len(payload)], rec); err != nil {
		return 0, 0, err
	}
	if dl := rec.Payload(); len(dl) != len(payload) {
		return 0, 0, fmt.Errorf("wal: record payload %dB, staged header says %d", len(payload), len(dl))
	}
	return total, prevNow + uint64(delta), nil
}

// Segments scans every segment in dir, in LSN order.
func Segments(dir string) ([]SegmentInfo, error) {
	bases, err := segBases(dir)
	if err != nil {
		return nil, err
	}
	var out []SegmentInfo
	for _, base := range bases {
		info, err := scanSegment(filepath.Join(dir, segName(base)), base)
		if err != nil {
			return out, err
		}
		out = append(out, info)
	}
	return out, nil
}

// Bounds returns the first and last LSN retained across dir's intact
// records (0, 0 for an empty log).
func Bounds(dir string) (first, last uint64, err error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, s := range segs {
		if s.Records == 0 {
			continue
		}
		if first == 0 {
			first = s.First
		}
		last = s.Last
	}
	return first, last, nil
}

// Replay streams every intact record with LSN >= from, in order, to fn,
// and returns the last LSN delivered (0 if none). A damaged tail in the
// LAST segment ends the stream cleanly — that is the crash the log
// exists to absorb; damage anywhere else (or an inter-segment LSN gap)
// returns ErrCorrupt, because acknowledged records are missing. fn
// errors abort the replay.
func Replay(dir string, from uint64, fn func(lsn, nowNs uint64, rec *wire.StagedReport) error) (last uint64, err error) {
	segs, err := Segments(dir)
	if err != nil {
		return 0, err
	}
	var rec wire.StagedReport
	var img [wire.MaxStagedEncodedLen]byte
	next := uint64(0)
	for si, s := range segs {
		if s.Records == 0 && s.Err == nil && si < len(segs)-1 {
			return last, fmt.Errorf("%w: segment %s is empty mid-log", ErrCorrupt, s.Path)
		}
		if s.Err != nil || s.TornBytes > 0 {
			if si < len(segs)-1 {
				return last, fmt.Errorf("%w: %s: %v", ErrCorrupt, s.Path, s.Err)
			}
		}
		if next != 0 && s.Records > 0 && s.First != next {
			return last, fmt.Errorf("%w: LSN gap: segment %s starts at %d, expected %d", ErrCorrupt, s.Path, s.First, next)
		}
		if s.Records == 0 {
			continue
		}
		next = s.Last + 1
		if s.Last < from {
			continue
		}
		b, err := os.ReadFile(s.Path)
		if err != nil {
			return last, err
		}
		off := int64(segHeaderLen)
		prevNow := uint64(0)
		for lsn := s.First; lsn <= s.Last; lsn++ {
			n, nowNs, err := readRecord(b[off:], prevNow, &img, &rec)
			if err != nil {
				// The scan above validated this range; damage appearing
				// now means the file changed underneath us.
				return last, fmt.Errorf("wal: %s: record %d: %w", s.Path, lsn, err)
			}
			off += int64(n)
			prevNow = nowNs
			if lsn < from {
				continue
			}
			if err := fn(lsn, nowNs, &rec); err != nil {
				return last, err
			}
			last = lsn
		}
	}
	return last, nil
}

// RepairTail truncates the last segment just past its final valid
// record, discarding a torn tail left by a crash mid-write. It returns
// the number of bytes removed (0 = nothing to repair). Damage in
// non-tail segments is NOT repaired (it is not a torn tail) and is
// reported by Replay instead.
func RepairTail(dir string) (removed int64, err error) {
	bases, err := segBases(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	if len(bases) == 0 {
		return 0, nil
	}
	last := bases[len(bases)-1]
	path := filepath.Join(dir, segName(last))
	info, err := scanSegment(path, last)
	if err != nil {
		return 0, err
	}
	if info.TornBytes == 0 {
		return 0, nil
	}
	if info.Bytes < segHeaderLen {
		// Not even the header survived: drop the whole segment file.
		if err := os.Remove(path); err != nil {
			return 0, err
		}
		return info.TornBytes, nil
	}
	if err := os.Truncate(path, info.Bytes); err != nil {
		return 0, err
	}
	return info.TornBytes, nil
}
