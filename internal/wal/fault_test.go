package wal

import (
	"errors"
	"io"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dta/internal/obs/journal"
	"dta/internal/wire"
)

// testFile is the inline fault-injection File used by these tests. The
// wal package cannot use internal/chaos (chaos imports wal for the File
// interface), so the faults are re-modelled here: injectable sync
// latency, a sticky errno, and short writes.
type testFile struct {
	f         *os.File
	syncDelay atomic.Int64 // ns added to every Sync
	errno     atomic.Int64 // non-zero: Write and Sync fail with it
	short     atomic.Bool  // Write stores only half and reports it
}

func (tf *testFile) Write(p []byte) (int, error) {
	if e := tf.errno.Load(); e != 0 {
		return 0, syscall.Errno(e)
	}
	if tf.short.Load() && len(p) > 1 {
		n, err := tf.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return tf.f.Write(p)
}

func (tf *testFile) Sync() error {
	if e := tf.errno.Load(); e != 0 {
		return syscall.Errno(e)
	}
	if d := tf.syncDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return tf.f.Sync()
}

func (tf *testFile) Close() error { return tf.f.Close() }

// wrapPolicy returns a policy whose segments open through a shared
// testFile fault state (segments rotate; the faults must follow).
func wrapPolicy(pol Policy) (Policy, *testFile) {
	tf := &testFile{}
	pol.WrapFile = func(f *os.File) File {
		tf.f = f
		return tf
	}
	return pol, tf
}

// countEvents tallies journal events by type.
func countEvents(j *journal.Journal) map[journal.Type]int {
	events, _, _ := j.Since(0, nil)
	out := map[journal.Type]int{}
	for i := range events {
		out[events[i].Type]++
	}
	return out
}

// TestDegradedAckCycle drives the full degraded-ack state machine: a
// slow disk trips entry after degradeEnterAfter consecutive over-bound
// fsyncs, degraded Syncs ack at the flush barrier without advancing
// DurableLSN, probes keep testing the disk, and a healed probe exits
// with DurableLSN catching up. Both transitions are journaled.
func TestDegradedAckCycle(t *testing.T) {
	pol, tf := wrapPolicy(Policy{DegradeFsync: time.Millisecond})
	w, err := Create(t.TempDir(), pol)
	if err != nil {
		t.Fatal(err)
	}
	j := journal.New(256)
	w.SetJournal(journal.Emitter{J: j, Comp: journal.CompWAL})

	sync := func(i int) {
		t.Helper()
		if _, err := w.Append(stagedKW(uint64(i), []byte{1, 2, 3, 4}, 2), uint64(i)*10); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy disk: every Sync fsyncs, DurableLSN tracks LastLSN.
	sync(0)
	if st := w.WStats(); st.Degraded || st.DegradedAcks != 0 {
		t.Fatalf("healthy writer degraded: %+v", st)
	}
	if w.DurableLSN() != w.LastLSN() {
		t.Fatal("healthy Sync left DurableLSN behind")
	}

	// Slow disk: degradeEnterAfter consecutive over-bound fsyncs enter
	// degraded mode.
	tf.syncDelay.Store(int64(5 * time.Millisecond))
	for i := 1; i <= degradeEnterAfter; i++ {
		sync(i)
	}
	if st := w.WStats(); !st.Degraded {
		t.Fatalf("still not degraded after %d slow fsyncs: %+v", degradeEnterAfter, st)
	}
	if n := countEvents(j)[journal.EvWALDegradeEnter]; n != 1 {
		t.Fatalf("degrade-enter events = %d, want 1", n)
	}

	// Degraded Syncs ack without fsyncing: DurableLSN holds while
	// LastLSN advances, and the skipped fsyncs are counted.
	durableAtEnter := w.DurableLSN()
	for i := 0; i < degradeProbeEvery-1; i++ {
		sync(100 + i)
	}
	st := w.WStats()
	if st.DegradedAcks != degradeProbeEvery-1 {
		t.Fatalf("DegradedAcks = %d, want %d", st.DegradedAcks, degradeProbeEvery-1)
	}
	if w.DurableLSN() != durableAtEnter {
		t.Fatalf("degraded Syncs advanced DurableLSN %d → %d", durableAtEnter, w.DurableLSN())
	}
	if w.LastLSN() <= durableAtEnter {
		t.Fatal("LastLSN did not advance past the durable watermark")
	}

	// The next Sync is a probe; the disk is still slow, so the writer
	// stays degraded.
	sync(200)
	if st := w.WStats(); !st.Degraded {
		t.Fatal("slow probe exited degraded mode")
	}

	// Heal the disk: the next probe comes back under the bound and
	// exits, with DurableLSN catching up at that fsync.
	tf.syncDelay.Store(0)
	for i := 0; i < degradeProbeEvery && w.WStats().Degraded; i++ {
		sync(300 + i)
	}
	if st := w.WStats(); st.Degraded {
		t.Fatalf("healed disk still degraded: %+v", st)
	}
	if n := countEvents(j)[journal.EvWALDegradeExit]; n != 1 {
		t.Fatalf("degrade-exit events = %d, want 1", n)
	}
	if w.DurableLSN() != w.LastLSN() {
		t.Fatalf("exit probe left DurableLSN %d behind LastLSN %d", w.DurableLSN(), w.LastLSN())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedCloseForcesFsync: Close while degraded must still fsync
// (forced), so a clean shutdown leaves a fully durable log even on a
// disk that was being probed.
func TestDegradedCloseForcesFsync(t *testing.T) {
	dir := t.TempDir()
	pol, tf := wrapPolicy(Policy{DegradeFsync: time.Millisecond})
	w, err := Create(dir, pol)
	if err != nil {
		t.Fatal(err)
	}
	tf.syncDelay.Store(int64(3 * time.Millisecond))
	const records = degradeEnterAfter + 4
	for i := 0; i < records; i++ {
		if _, err := w.Append(stagedKW(uint64(i), []byte{9, 9, 9, 9}, 2), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.WStats(); !st.Degraded {
		t.Fatalf("writer not degraded before Close: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything replays: the forced Close fsync persisted the tail the
	// degraded acks had left volatile.
	var n int
	if _, err := Replay(dir, 1, func(uint64, uint64, *wire.StagedReport) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("replayed %d records, want %d", n, records)
	}
}

// TestShortWritesRetried: a disk that truncates every write still ends
// up with a byte-exact log — the flusher retries the remainder — and
// the records replay intact.
func TestShortWritesRetried(t *testing.T) {
	dir := t.TempDir()
	pol, tf := wrapPolicy(Policy{})
	w, err := Create(dir, pol)
	if err != nil {
		t.Fatal(err)
	}
	tf.short.Store(true)
	const records = 300
	for i := 0; i < records; i++ {
		if _, err := w.Append(stagedKW(uint64(i), []byte{byte(i), 1, 2, 3}, 2), uint64(i)*7); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var n int
	if _, err := Replay(dir, 1, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
		i := int(lsn - 1)
		if nowNs != uint64(i)*7 {
			t.Fatalf("record %d nowNs = %d, want %d", i, nowNs, i*7)
		}
		key, _ := rec.KeyWriteArgs()
		if *key != wire.KeyFromUint64(uint64(i)) {
			t.Fatalf("record %d key mismatch", i)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != records {
		t.Fatalf("replayed %d records, want %d", n, records)
	}
}

// TestStickyErrnoSurfaced: a dead disk fails the flusher sticky, the
// errno lands in Stats.FailedErrno (the /healthz wal_failed rule's
// source), the failure is journaled with the errno, and appenders see
// the error instead of wedging.
func TestStickyErrnoSurfaced(t *testing.T) {
	pol, tf := wrapPolicy(Policy{})
	w, err := Create(t.TempDir(), pol)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	j := journal.New(64)
	w.SetJournal(journal.Emitter{J: j, Comp: journal.CompWAL})

	tf.errno.Store(int64(syscall.EIO))
	if _, err := w.Append(stagedKW(1, []byte{1, 2, 3, 4}, 2), 1); err != nil {
		t.Fatal(err) // the append itself is accepted; the flusher fails
	}
	if err := w.Flush(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Flush error = %v, want EIO", err)
	}
	if st := w.WStats(); st.FailedErrno != int64(syscall.EIO) {
		t.Fatalf("stats after dead disk: %+v", st)
	}
	// Sticky: healing the file does not resurrect the writer.
	tf.errno.Store(0)
	if _, err := w.Append(stagedKW(2, []byte{1, 2, 3, 4}, 2), 2); err == nil {
		t.Fatal("append accepted on a failed log")
	}

	events, _, _ := j.Since(0, nil)
	var found bool
	for i := range events {
		if events[i].Type == journal.EvWALError && events[i].Arg1 == uint64(syscall.EIO) {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvWALError event carrying the errno")
	}
}

// TestReplayNonMonotonicTime pins the signed varint time encoding: a
// skewed clock that jumps backwards mid-log must replay byte-exact
// timestamps (chaos clock-skew faults produce exactly this shape).
func TestReplayNonMonotonicTime(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	times := []uint64{1000, 5_000_000_000, 200, 0, 3_000_000_000, 2_999_999_999}
	for i, ts := range times {
		if _, err := w.Append(stagedKW(uint64(i), []byte{4, 3, 2, 1}, 2), ts); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if _, err := Replay(dir, 1, func(_, nowNs uint64, _ *wire.StagedReport) error {
		got = append(got, nowNs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(times) {
		t.Fatalf("replayed %d records, want %d", len(got), len(times))
	}
	for i := range times {
		if got[i] != times[i] {
			t.Fatalf("record %d nowNs = %d, want %d", i, got[i], times[i])
		}
	}
}
