package wal

import (
	"os"
	"testing"
)

func BenchmarkWriterAppend(b *testing.B) {
	w, err := Create(b.TempDir(), Policy{})
	if err != nil {
		b.Fatal(err)
	}
	rec := stagedKW(7, []byte{1, 2, 3, 4}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(rec, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Close()
}

func BenchmarkWriterAppendShm(b *testing.B) {
	dir, err := os.MkdirTemp("/dev/shm", "walbench-*")
	if err != nil {
		b.Skip(err)
	}
	defer os.RemoveAll(dir)
	w, err := Create(dir, Policy{})
	if err != nil {
		b.Fatal(err)
	}
	rec := stagedKW(7, []byte{1, 2, 3, 4}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(rec, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Close()
}
