package netsim

import "testing"

func TestSerializationDelay(t *testing.T) {
	l := NewLink(100e9, 500, 0, 1)     // 100G, 500ns propagation
	arrive, dropped := l.Send(0, 1250) // 1250B = 100ns at 100G
	if dropped {
		t.Fatal("dropped on lossless link")
	}
	if arrive != 600 {
		t.Errorf("arrival = %d, want 600 (100 ser + 500 prop)", arrive)
	}
}

func TestBackToBackQueueing(t *testing.T) {
	l := NewLink(100e9, 0, 0, 1)
	a1, _ := l.Send(0, 1250)
	a2, _ := l.Send(0, 1250)
	if a2 != a1+100 {
		t.Errorf("second packet at %d, want %d (queued)", a2, a1+100)
	}
	if l.Utilisation(0) != 200 {
		t.Errorf("utilisation = %d", l.Utilisation(0))
	}
	if l.Utilisation(1000) != 0 {
		t.Error("utilisation should drain")
	}
}

func TestLossRate(t *testing.T) {
	l := NewLink(100e9, 0, 0.1, 42)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(uint64(i)*1000, 100)
	}
	rate := float64(l.Dropped) / n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("loss rate = %.3f, want ≈0.1", rate)
	}
}

func TestPFCDisablesLoss(t *testing.T) {
	l := NewLink(100e9, 0, 0.5, 42)
	l.PFC = true
	for i := 0; i < 1000; i++ {
		if _, dropped := l.Send(uint64(i)*10, 100); dropped {
			t.Fatal("drop on PFC link")
		}
	}
	if l.Dropped != 0 {
		t.Errorf("dropped = %d", l.Dropped)
	}
}

func TestZeroRateLinkNoSerialization(t *testing.T) {
	l := NewLink(0, 100, 0, 1)
	arrive, _ := l.Send(50, 1500)
	if arrive != 150 {
		t.Errorf("arrival = %d, want 150", arrive)
	}
}
