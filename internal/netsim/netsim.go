// Package netsim provides the thin network fabric used to plumb
// reporters, translators and collectors together in simulations: links
// with rate, propagation delay and loss, and a lossless (PFC-style) mode
// for the DTA↔collector hop (§7, "Flow Control in DTA").
package netsim

import (
	"math/rand"
)

// Link models one unidirectional link.
type Link struct {
	// RateBps is the line rate in bits per second.
	RateBps float64
	// PropagationNs is the fixed propagation delay.
	PropagationNs uint64
	// LossProb is the per-packet loss probability (ignored when PFC).
	LossProb float64
	// PFC enables priority flow control: no loss, but transmissions
	// queue behind the link's serialisation rate (modelled by pushing
	// the busy horizon forward).
	PFC bool

	rnd  *rand.Rand
	busy uint64 // ns at which the link is next free
	// Stats
	Sent, Dropped uint64
}

// NewLink builds a link; seed fixes the loss pattern.
func NewLink(rateBps float64, propagationNs uint64, lossProb float64, seed int64) *Link {
	return &Link{
		RateBps:       rateBps,
		PropagationNs: propagationNs,
		LossProb:      lossProb,
		rnd:           rand.New(rand.NewSource(seed)),
	}
}

// Send models transmitting size bytes at nowNs. It returns the arrival
// time and whether the packet was dropped.
func (l *Link) Send(nowNs uint64, size int) (arriveNs uint64, dropped bool) {
	l.Sent++
	if !l.PFC && l.LossProb > 0 && l.rnd.Float64() < l.LossProb {
		l.Dropped++
		return 0, true
	}
	start := nowNs
	if l.busy > start {
		start = l.busy
	}
	serNs := uint64(0)
	if l.RateBps > 0 {
		serNs = uint64(float64(size*8) / l.RateBps * 1e9)
	}
	l.busy = start + serNs
	return l.busy + l.PropagationNs, false
}

// Utilisation returns the queueing horizon relative to now: how many
// nanoseconds of serialisation are already committed.
func (l *Link) Utilisation(nowNs uint64) uint64 {
	if l.busy <= nowNs {
		return 0
	}
	return l.busy - nowNs
}
