package asic

import (
	"math"
	"testing"
)

func TestReporterDTACloseToUDP(t *testing.T) {
	// Fig. 9's takeaway: DTA imposes an almost identical footprint to UDP.
	_, udp := ReporterFootprint(ExportUDP)
	_, dta := ReporterFootprint(ExportDTA)
	for _, r := range Resources() {
		d := dta.Get(r) - udp.Get(r)
		if d < 0 || d > 0.5 {
			t.Errorf("%v: DTA-UDP delta %.2f, want within [0, 0.5]", r, d)
		}
	}
}

func TestReporterRDMARoughlyDouble(t *testing.T) {
	// Fig. 9's other takeaway: DTA halves the footprint vs RDMA.
	_, dta := ReporterFootprint(ExportDTA)
	_, rdma := ReporterFootprint(ExportRDMA)
	for _, r := range Resources() {
		ratio := rdma.Get(r) / dta.Get(r)
		if ratio < 1.8 || ratio > 3.2 {
			t.Errorf("%v: RDMA/DTA ratio %.2f, want ~2x", r, ratio)
		}
	}
}

func TestReporterTotalIncludesMonitoring(t *testing.T) {
	total, export := ReporterFootprint(ExportDTA)
	for _, r := range Resources() {
		if total.Get(r) <= export.Get(r) {
			t.Errorf("%v: total %.2f not above export-only %.2f", r, total.Get(r), export.Get(r))
		}
	}
}

func TestTranslatorBaseMatchesTable3(t *testing.T) {
	f := TranslatorFootprint(1)
	want := map[Resource]float64{
		SRAM:        13.2,
		MatchXbar:   10.6,
		TableIDs:    49.0,
		TernaryBus:  30.7,
		StatefulALU: 25.0,
	}
	for r, w := range want {
		if got := f.Get(r); math.Abs(got-w) > 1e-9 {
			t.Errorf("%v base = %.1f, want %.1f", r, got, w)
		}
	}
}

func TestTranslatorBatch16MatchesTable3(t *testing.T) {
	f := TranslatorFootprint(16)
	want := map[Resource]float64{
		SRAM:        13.2 + 3.2,
		MatchXbar:   10.6 + 7.2,
		TableIDs:    49.0 + 7.8,
		TernaryBus:  30.7 + 7.8,
		StatefulALU: 25.0 + 31.3,
	}
	for r, w := range want {
		if got := f.Get(r); math.Abs(got-w) > 1e-9 {
			t.Errorf("%v batch16 = %.1f, want %.1f", r, got, w)
		}
	}
}

func TestTranslatorBatchScalesLinearly(t *testing.T) {
	// §6.4: stateful ALU calls correlate linearly with batch size.
	b1 := TranslatorFootprint(1).Get(StatefulALU)
	b8 := TranslatorFootprint(8).Get(StatefulALU)
	b16 := TranslatorFootprint(16).Get(StatefulALU)
	// The batching *delta* at 8 should be (8-1)/(16-1) of the delta at 16.
	wantDelta8 := (b16 - b1) * 7 / 15
	if math.Abs((b8-b1)-wantDelta8) > 1e-9 {
		t.Errorf("batch-8 sALU delta = %.3f, want %.3f", b8-b1, wantDelta8)
	}
}

func TestTranslatorFitsInTofino(t *testing.T) {
	// The paper's takeaway: the translator fits with a majority of
	// resources left over (every class below ~60%).
	f := TranslatorFootprint(16)
	if !f.Fits() {
		t.Fatal("translator does not fit")
	}
	if r, v := f.Max(); v > 60 {
		t.Errorf("max resource %v = %.1f%%, want under 60%%", r, v)
	}
}

func TestFootprintAlgebra(t *testing.T) {
	a := Footprint{1, 2, 3, 4, 5, 6}
	b := Footprint{10, 20, 30, 40, 50, 60}
	sum := a.Add(b)
	if sum.Get(StatefulALU) != 66 {
		t.Errorf("Add = %+v", sum)
	}
	if s := a.Scale(2); s.Get(SRAM) != 2 || s.Get(StatefulALU) != 12 {
		t.Errorf("Scale = %+v", s)
	}
	if r, v := b.Max(); r != StatefulALU || v != 60 {
		t.Errorf("Max = %v %v", r, v)
	}
	over := Footprint{101}
	if over.Fits() {
		t.Error("overcommitted footprint fits")
	}
}

func TestResourceNames(t *testing.T) {
	if SRAM.String() != "SRAM" || StatefulALU.String() != "Stateful ALU" {
		t.Error("unexpected resource names")
	}
	if ExportDTA.String() != "DTA" || ExportRDMA.String() != "RDMA" || ExportUDP.String() != "UDP" {
		t.Error("unexpected mechanism names")
	}
}
