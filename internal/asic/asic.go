// Package asic models the hardware resource footprint of P4 programs on a
// first-generation programmable switch ASIC (Intel Tofino 1).
//
// The paper evaluates DTA's data-plane cost in two places: Fig. 9 compares
// a reporter that emits DTA reports against RDMA-generating and plain-UDP
// alternatives across six resource classes, and Table 3 reports the
// translator pipeline's footprint with and without Append batching. This
// package encodes those resource classes and per-feature charges so the
// reporter and translator builds can be "compiled" into a footprint and
// checked against the paper's numbers.
//
// Charges are percentages of the chip-wide budget for each resource class,
// as vendor P4 compilers report them. The translator base costs are taken
// directly from Table 3; the reporter costs are read off Fig. 9; remaining
// values (marked in comments) are interpolated consistently with the
// figure's shape (DTA ≈ UDP, RDMA ≈ 2× DTA).
package asic

import "fmt"

// Resource is a Tofino resource class.
type Resource int

// The resource classes of Fig. 9 and Table 3.
const (
	SRAM Resource = iota
	MatchXbar
	TableIDs
	HashDist
	TernaryBus
	StatefulALU
	numResources
)

// String names the resource as the paper's figures do.
func (r Resource) String() string {
	switch r {
	case SRAM:
		return "SRAM"
	case MatchXbar:
		return "Match Crossbar"
	case TableIDs:
		return "Table IDs"
	case HashDist:
		return "Hash Dist"
	case TernaryBus:
		return "Ternary Bus"
	case StatefulALU:
		return "Stateful ALU"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Resources lists all classes in display order.
func Resources() []Resource {
	return []Resource{SRAM, MatchXbar, TableIDs, HashDist, TernaryBus, StatefulALU}
}

// Footprint is a per-class utilisation in percent of the chip budget.
type Footprint [numResources]float64

// Get returns the utilisation of a class.
func (f Footprint) Get(r Resource) float64 { return f[r] }

// Add returns the sum of two footprints.
func (f Footprint) Add(g Footprint) Footprint {
	var out Footprint
	for i := range f {
		out[i] = f[i] + g[i]
	}
	return out
}

// Scale returns the footprint multiplied by k.
func (f Footprint) Scale(k float64) Footprint {
	var out Footprint
	for i := range f {
		out[i] = f[i] * k
	}
	return out
}

// Fits reports whether every class stays within 100%.
func (f Footprint) Fits() bool {
	for _, v := range f {
		if v > 100 {
			return false
		}
	}
	return true
}

// Max returns the most utilised class.
func (f Footprint) Max() (Resource, float64) {
	best, bestV := Resource(0), f[0]
	for i := 1; i < int(numResources); i++ {
		if f[i] > bestV {
			best, bestV = Resource(i), f[i]
		}
	}
	return best, bestV
}

// ExportMechanism selects how a reporter ships telemetry off the switch.
type ExportMechanism int

// The three reporter variants compared in Fig. 9.
const (
	ExportUDP ExportMechanism = iota
	ExportDTA
	ExportRDMA
)

// String names the mechanism.
func (m ExportMechanism) String() string {
	switch m {
	case ExportUDP:
		return "UDP"
	case ExportDTA:
		return "DTA"
	case ExportRDMA:
		return "RDMA"
	default:
		return fmt.Sprintf("ExportMechanism(%d)", int(m))
	}
}

// monitoringBase is the INT-XD monitoring logic shared by all reporter
// variants (Fig. 9 measures only the report-generation delta on top of a
// "switch implementing a simple INT-XD system").
var monitoringBase = Footprint{
	SRAM:        3.0,
	MatchXbar:   3.5,
	TableIDs:    6.0,
	HashDist:    2.0,
	TernaryBus:  4.0,
	StatefulALU: 2.0,
}

// exportCosts are the report-generation deltas (read off Fig. 9: UDP and
// DTA nearly identical; RDMA roughly doubles every class because it must
// keep per-connection state, craft RoCEv2 headers and maintain PSNs).
var exportCosts = map[ExportMechanism]Footprint{
	ExportUDP: {
		SRAM:        2.1,
		MatchXbar:   3.1,
		TableIDs:    6.3,
		HashDist:    3.1,
		TernaryBus:  4.2,
		StatefulALU: 2.1,
	},
	ExportDTA: {
		SRAM:        2.3,
		MatchXbar:   3.3,
		TableIDs:    6.5,
		HashDist:    3.3,
		TernaryBus:  4.2,
		StatefulALU: 2.1,
	},
	ExportRDMA: {
		SRAM:        4.8,
		MatchXbar:   6.9,
		TableIDs:    12.9,
		HashDist:    6.8,
		TernaryBus:  8.6,
		StatefulALU: 6.3,
	},
}

// ReporterFootprint returns the full footprint of an INT-XD reporter using
// the given export mechanism, and the export delta alone (what Fig. 9
// plots).
func ReporterFootprint(m ExportMechanism) (total, exportOnly Footprint) {
	exportOnly = exportCosts[m]
	return monitoringBase.Add(exportOnly), exportOnly
}

// translatorBase is Table 3's "Base footprint" row for a translator
// supporting Key-Write, Postcarding and Append concurrently. Hash Dist is
// not reported in Table 3; its value is set from the pipeline's hash
// usage (N slot hashes + checksum + postcard cache index).
var translatorBase = Footprint{
	SRAM:        13.2,
	MatchXbar:   10.6,
	TableIDs:    49.0,
	HashDist:    18.0,
	TernaryBus:  30.7,
	StatefulALU: 25.0,
}

// batching16 is Table 3's "Batching" row: the delta for Append batching
// of 16×4B reports. The Stateful ALU share dominates because the
// non-recirculating pipeline must touch all B−1 stashed entries in one
// traversal (§6.4).
var batching16 = Footprint{
	SRAM:        3.2,
	MatchXbar:   7.2,
	TableIDs:    7.8,
	HashDist:    0.0,
	TernaryBus:  7.8,
	StatefulALU: 31.3,
}

// referenceBatch is the batch size Table 3's batching row was measured at.
const referenceBatch = 16

// TranslatorFootprint returns the footprint of a translator supporting all
// primitives with the given Append batch size (1 disables batching). The
// batching cost scales linearly with batch size, as §6.4 observes for the
// Stateful ALU component.
func TranslatorFootprint(batchSize int) Footprint {
	if batchSize <= 1 {
		return translatorBase
	}
	k := float64(batchSize-1) / float64(referenceBatch-1)
	return translatorBase.Add(batching16.Scale(k))
}
