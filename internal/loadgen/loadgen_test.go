package loadgen

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dta/internal/wire"
)

// memReporter records the submission sequence of one goroutine.
type memReporter struct {
	seq  []string
	keys map[uint64]int
}

func newMemReporter() *memReporter {
	return &memReporter{keys: make(map[uint64]int)}
}

func (r *memReporter) note(op string, key uint64) {
	r.seq = append(r.seq, fmt.Sprintf("%s:%d", op, key))
	r.keys[key]++
}

func (r *memReporter) KeyWrite(key wire.Key, data []byte, n int) error {
	r.note("kw", keyID(key))
	return nil
}

func (r *memReporter) Increment(key wire.Key, delta uint64, n int) error {
	r.note("ki", keyID(key))
	return nil
}

func (r *memReporter) Postcard(key wire.Key, hop, pathLen int) error {
	r.note("pc", keyID(key))
	return nil
}

func (r *memReporter) Append(list uint32, data []byte) error {
	r.note("ap", uint64(list))
	return nil
}

func keyID(k wire.Key) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(k[i])
	}
	return v
}

// runRecorded runs cfg against fresh memReporters and returns them.
func runRecorded(t *testing.T, cfg Config) []*memReporter {
	t.Helper()
	var mu sync.Mutex
	reps := map[int]*memReporter{}
	res, err := Run(cfg, func(i int) Reporter {
		r := newMemReporter()
		mu.Lock()
		reps[i] = r
		mu.Unlock()
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.withDefaults()
	if want := uint64(cfg.Reporters * cfg.Reports); res.Submitted != want {
		t.Fatalf("Submitted = %d, want %d", res.Submitted, want)
	}
	out := make([]*memReporter, cfg.Reporters)
	for i := range out {
		out[i] = reps[i]
	}
	return out
}

func TestDeterministicSequences(t *testing.T) {
	for _, kind := range []Kind{Uniform, Zipf, Incast, Mixed} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Profile: Profile{Kind: kind}, Reporters: 3, Reports: 500, Seed: 42}
			a := runRecorded(t, cfg)
			b := runRecorded(t, cfg)
			for i := range a {
				if len(a[i].seq) != len(b[i].seq) {
					t.Fatalf("reporter %d: sequence lengths differ", i)
				}
				for j := range a[i].seq {
					if a[i].seq[j] != b[i].seq[j] {
						t.Fatalf("reporter %d diverges at %d: %s vs %s", i, j, a[i].seq[j], b[i].seq[j])
					}
				}
			}
			// Reporters must not mirror each other.
			if len(a) > 1 && a[0].seq[0] == a[1].seq[0] && a[0].seq[1] == a[1].seq[1] {
				t.Fatalf("reporters 0 and 1 start identically: %v", a[0].seq[:2])
			}
		})
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a := runRecorded(t, Config{Reporters: 1, Reports: 100, Seed: 1})
	b := runRecorded(t, Config{Reporters: 1, Reports: 100, Seed: 2})
	same := 0
	for i := range a[0].seq {
		if a[0].seq[i] == b[0].seq[i] {
			same++
		}
	}
	if same == len(a[0].seq) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestZipfSkew(t *testing.T) {
	reps := runRecorded(t, Config{Profile: Profile{Kind: Zipf}, Reporters: 1, Reports: 5000, Seed: 7})
	max, total := 0, 0
	for _, c := range reps[0].keys {
		total += c
		if c > max {
			max = c
		}
	}
	// Under s=1.2 the hottest key takes a large share; uniform over 64k
	// keys would make max ≈ 1.
	if max < total/20 {
		t.Fatalf("hottest key has %d/%d reports — not skewed", max, total)
	}
}

func TestIncastConcentration(t *testing.T) {
	reps := runRecorded(t, Config{Profile: Profile{Kind: Incast}, Reporters: 2, Reports: 1000, Seed: 3})
	for i, r := range reps {
		if len(r.keys) > 4 {
			t.Fatalf("reporter %d touched %d keys, want ≤ 4 (hot set)", i, len(r.keys))
		}
	}
}

func TestBurstyPacing(t *testing.T) {
	cfg := Config{
		Profile:   Profile{Kind: Bursty, BurstLen: 100, BurstIdle: 100 * time.Microsecond},
		Reporters: 2,
		Reports:   500,
		Seed:      9,
	}
	a := runRecorded(t, cfg)
	b := runRecorded(t, cfg)
	for i := range a {
		for j := range a[i].seq {
			if a[i].seq[j] != b[i].seq[j] {
				t.Fatalf("bursty reporter %d diverges at %d despite same seed", i, j)
			}
		}
	}
}

func TestMixedUsesAllPrimitives(t *testing.T) {
	reps := runRecorded(t, Config{Profile: Profile{Kind: Mixed}, Reporters: 1, Reports: 1000, Seed: 5})
	seen := map[string]bool{}
	for _, s := range reps[0].seq {
		seen[s[:2]] = true
	}
	for _, op := range []string{"kw", "ki", "pc", "ap"} {
		if !seen[op] {
			t.Fatalf("mixed profile never used %s", op)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"uniform", "zipf", "bursty", "incast", "mixed"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind.String() != name {
			t.Fatalf("ProfileByName(%q).Kind = %v", name, p.Kind)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// errReporter fails every submission.
type errReporter struct{}

func (errReporter) KeyWrite(wire.Key, []byte, int) error  { return fmt.Errorf("down") }
func (errReporter) Increment(wire.Key, uint64, int) error { return fmt.Errorf("down") }
func (errReporter) Postcard(wire.Key, int, int) error     { return fmt.Errorf("down") }
func (errReporter) Append(uint32, []byte) error           { return fmt.Errorf("down") }

func TestZipfParamsValidated(t *testing.T) {
	// rand.NewZipf requires s > 1 and v >= 1; out-of-domain values must
	// error up front, not panic in the reporter goroutines.
	for _, p := range []Profile{
		{Kind: Zipf, ZipfS: 1.0},
		{Kind: Zipf, ZipfS: 0.5},
		{Kind: Zipf, ZipfS: 1.2, ZipfV: 0.5},
	} {
		if _, err := Run(Config{Profile: p, Reporters: 1, Reports: 1}, func(int) Reporter { return newMemReporter() }); err == nil {
			t.Fatalf("Run accepted invalid zipf params %+v", p)
		}
	}
}

func TestRunSurfacesErrors(t *testing.T) {
	res, err := Run(Config{Reporters: 2, Reports: 10}, func(int) Reporter { return errReporter{} })
	if err == nil {
		t.Fatal("Run with failing reporter returned nil error")
	}
	if res.Errors != 2 || res.Submitted != 0 {
		t.Fatalf("res = %+v, want 2 errors, 0 submitted", res)
	}
}

func TestParseSchedule(t *testing.T) {
	got, err := ParseSchedule(" kill@0.25=1, restore@0.75=1 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{After: 0.25, Action: Kill, Collector: 1},
		{After: 0.75, Action: Restore, Collector: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if ev, err := ParseSchedule(""); err != nil || len(ev) != 0 {
		t.Errorf("empty spec: %v %v", ev, err)
	}
	for _, bad := range []string{"kill@0.5", "nuke@0.5=1", "kill@1.5=1", "kill@0.5=x", "kill=1"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestScheduleFiresInOrder: events fire as submission progress crosses
// their thresholds, in order, and leftovers apply before Drain.
func TestScheduleFiresInOrder(t *testing.T) {
	var mu sync.Mutex
	var fired []Event
	var progressAtFire []uint64
	var submitted atomic.Uint64
	cfg := Config{
		Reporters: 2,
		Reports:   5000,
		Schedule: []Event{
			{After: 1.0, Action: Restore, Collector: 1}, // deliberately out of order
			{After: 0.2, Action: Kill, Collector: 1},
		},
		Control: func(ev Event) error {
			mu.Lock()
			defer mu.Unlock()
			fired = append(fired, ev)
			progressAtFire = append(progressAtFire, submitted.Load())
			return nil
		},
		Drain: func() error {
			mu.Lock()
			defer mu.Unlock()
			if len(fired) != 2 {
				t.Errorf("drain ran with %d events fired, want 2", len(fired))
			}
			return nil
		},
	}
	res, err := Run(cfg, func(int) Reporter {
		return countingReporter{&submitted}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsFired != 2 {
		t.Fatalf("EventsFired = %d, want 2", res.EventsFired)
	}
	if fired[0].Action != Kill || fired[1].Action != Restore {
		t.Fatalf("fired order = %v", fired)
	}
	// The kill must not fire before its 20% threshold: the scheduler
	// waits for the counter, which only grows, so the progress observed
	// at fire time is at least the threshold.
	if progressAtFire[0] < 2000 {
		t.Errorf("kill fired at %d submissions, threshold 2000", progressAtFire[0])
	}
}

func TestScheduleRequiresControl(t *testing.T) {
	_, err := Run(Config{Reporters: 1, Reports: 1, Schedule: []Event{{After: 0.5}}},
		func(int) Reporter { return newMemReporter() })
	if err == nil {
		t.Fatal("schedule without Control accepted")
	}
}

func TestScheduleControlErrorSurfaced(t *testing.T) {
	res, err := Run(Config{
		Reporters: 1,
		Reports:   100,
		Schedule:  []Event{{After: 0, Action: Kill, Collector: 3}},
		Control:   func(Event) error { return fmt.Errorf("no such collector") },
	}, func(int) Reporter { return newMemReporter() })
	if err == nil {
		t.Fatal("Control error not surfaced")
	}
	if res.EventsFired != 0 {
		t.Fatalf("EventsFired = %d, want 0", res.EventsFired)
	}
}

// countingReporter tracks global submissions for the schedule test.
type countingReporter struct{ n *atomic.Uint64 }

func (r countingReporter) KeyWrite(wire.Key, []byte, int) error  { r.n.Add(1); return nil }
func (r countingReporter) Increment(wire.Key, uint64, int) error { r.n.Add(1); return nil }
func (r countingReporter) Postcard(wire.Key, int, int) error     { r.n.Add(1); return nil }
func (r countingReporter) Append(uint32, []byte) error           { r.n.Add(1); return nil }

// TestWrittenKeysMatchesRun: WrittenKeys must predict exactly the keys
// a run Key-Writes — the contract failure-scenario verification rests on.
func TestWrittenKeysMatchesRun(t *testing.T) {
	for _, kind := range []Kind{Uniform, Mixed} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Profile: Profile{Kind: kind}, Reporters: 3, Reports: 2000, Seed: 11}
			var mu sync.Mutex
			written := map[uint64]struct{}{}
			_, err := Run(cfg, func(int) Reporter {
				return recordKWReporter{mu: &mu, keys: written}
			})
			if err != nil {
				t.Fatal(err)
			}
			predicted := WrittenKeys(cfg)
			if len(predicted) != len(written) {
				t.Fatalf("predicted %d keys, run wrote %d", len(predicted), len(written))
			}
			for _, k := range predicted {
				if _, ok := written[k]; !ok {
					t.Fatalf("predicted key %d never written", k)
				}
			}
		})
	}
}

// recordKWReporter records only Key-Write keys (what WrittenKeys predicts).
type recordKWReporter struct {
	mu   *sync.Mutex
	keys map[uint64]struct{}
}

func (r recordKWReporter) KeyWrite(k wire.Key, _ []byte, _ int) error {
	r.mu.Lock()
	r.keys[keyID(k)] = struct{}{}
	r.mu.Unlock()
	return nil
}
func (r recordKWReporter) Increment(wire.Key, uint64, int) error { return nil }
func (r recordKWReporter) Postcard(wire.Key, int, int) error     { return nil }
func (r recordKWReporter) Append(uint32, []byte) error           { return nil }

// TestParseScheduleChaos covers the chaos grammar: reporter and peer
// partitions, slow disks, clock skew and heals, plus flap's expansion
// into explicit partition/heal cycles.
func TestParseScheduleChaos(t *testing.T) {
	got, err := ParseSchedule("partition@0.3=1,partition@0.35=0:2,slowdisk@0.4=1:50ms,skew@0.5=1:+2s,skew@0.6=0:-1s,heal@0.8=*,heal@0.9=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{After: 0.3, Action: Partition, Collector: 1},
		{After: 0.35, Action: PartitionPeer, Collector: 0, Peer: 2},
		{After: 0.4, Action: SlowDisk, Collector: 1, FsyncLat: 50 * time.Millisecond},
		{After: 0.5, Action: Skew, Collector: 1, Skew: 2 * time.Second},
		{After: 0.6, Action: Skew, Collector: 0, Skew: -time.Second},
		{After: 0.8, Action: Heal, Collector: -1},
		{After: 0.9, Action: Heal, Collector: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if !ScheduleNeedsChaos(got) {
		t.Error("chaos schedule not flagged as needing a plane")
	}
	if kr, _ := ParseSchedule("kill@0.3=1,restore@0.6=1"); ScheduleNeedsChaos(kr) {
		t.Error("kill/restore schedule flagged as needing a plane")
	}

	for _, bad := range []string{
		"partition@0.3=1:1",  // peer self-loop
		"flap@0.2=1",         // missing period
		"flap@0.2=1/0",       // zero period
		"flap@0.2=1/0.6",     // period over 0.5
		"slowdisk@0.4=1",     // missing latency
		"slowdisk@0.4=1:-5s", // negative latency
		"skew@0.5=1",         // missing offset
		"skew@0.5=1:fast",    // unparseable offset
		"heal@0.8=",          // no target
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// TestFlapExpansion pins flap's desugaring: three partition/heal cycles
// one period apart, ending healed, fractions capped at 1.
func TestFlapExpansion(t *testing.T) {
	got, err := ParseSchedule("flap@0.2=1/0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*flapCycles {
		t.Fatalf("flap expanded to %d events, want %d", len(got), 2*flapCycles)
	}
	for c := 0; c < flapCycles; c++ {
		cut, heal := got[2*c], got[2*c+1]
		wantAt := 0.2 + float64(2*c)*0.05
		if cut.Action != Partition || cut.Collector != 1 || math.Abs(cut.After-wantAt) > 1e-9 {
			t.Errorf("cycle %d cut = %+v, want partition@%g=1", c, cut, wantAt)
		}
		if heal.Action != Heal || heal.Collector != 1 || math.Abs(heal.After-(wantAt+0.05)) > 1e-9 {
			t.Errorf("cycle %d heal = %+v, want heal@%g=1", c, heal, wantAt+0.05)
		}
	}
	if last := got[len(got)-1]; last.Action != Heal {
		t.Errorf("flap ends with %v, want heal", last.Action)
	}

	// A flap starting late clamps at the end of the run rather than
	// scheduling past it (leftover events still fire before Drain).
	late, err := ParseSchedule("flap@0.95=0/0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range late {
		if ev.After > 1 {
			t.Errorf("event %+v scheduled past the end of the run", ev)
		}
	}
}

// TestFormatScheduleRoundTrip: formatting a parsed schedule and parsing
// it again yields the same events.
func TestFormatScheduleRoundTrip(t *testing.T) {
	spec := "kill@0.25=1,restore@0.75=1,partition@0.3=2,partition@0.35=0:2,slowdisk@0.4=1:50ms,skew@0.5=1:2s,heal@0.8=*"
	evs, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	formatted := FormatSchedule(evs)
	again, err := ParseSchedule(formatted)
	if err != nil {
		t.Fatalf("reparse of %q: %v", formatted, err)
	}
	if len(again) != len(evs) {
		t.Fatalf("round trip changed event count: %d vs %d", len(again), len(evs))
	}
	for i := range evs {
		if evs[i] != again[i] {
			t.Errorf("event %d: %+v != %+v (via %q)", i, evs[i], again[i], formatted)
		}
	}
}
