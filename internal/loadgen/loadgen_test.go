package loadgen

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dta/internal/wire"
)

// memReporter records the submission sequence of one goroutine.
type memReporter struct {
	seq  []string
	keys map[uint64]int
}

func newMemReporter() *memReporter {
	return &memReporter{keys: make(map[uint64]int)}
}

func (r *memReporter) note(op string, key uint64) {
	r.seq = append(r.seq, fmt.Sprintf("%s:%d", op, key))
	r.keys[key]++
}

func (r *memReporter) KeyWrite(key wire.Key, data []byte, n int) error {
	r.note("kw", keyID(key))
	return nil
}

func (r *memReporter) Increment(key wire.Key, delta uint64, n int) error {
	r.note("ki", keyID(key))
	return nil
}

func (r *memReporter) Postcard(key wire.Key, hop, pathLen int) error {
	r.note("pc", keyID(key))
	return nil
}

func (r *memReporter) Append(list uint32, data []byte) error {
	r.note("ap", uint64(list))
	return nil
}

func keyID(k wire.Key) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(k[i])
	}
	return v
}

// runRecorded runs cfg against fresh memReporters and returns them.
func runRecorded(t *testing.T, cfg Config) []*memReporter {
	t.Helper()
	var mu sync.Mutex
	reps := map[int]*memReporter{}
	res, err := Run(cfg, func(i int) Reporter {
		r := newMemReporter()
		mu.Lock()
		reps[i] = r
		mu.Unlock()
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg = cfg.withDefaults()
	if want := uint64(cfg.Reporters * cfg.Reports); res.Submitted != want {
		t.Fatalf("Submitted = %d, want %d", res.Submitted, want)
	}
	out := make([]*memReporter, cfg.Reporters)
	for i := range out {
		out[i] = reps[i]
	}
	return out
}

func TestDeterministicSequences(t *testing.T) {
	for _, kind := range []Kind{Uniform, Zipf, Incast, Mixed} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Profile: Profile{Kind: kind}, Reporters: 3, Reports: 500, Seed: 42}
			a := runRecorded(t, cfg)
			b := runRecorded(t, cfg)
			for i := range a {
				if len(a[i].seq) != len(b[i].seq) {
					t.Fatalf("reporter %d: sequence lengths differ", i)
				}
				for j := range a[i].seq {
					if a[i].seq[j] != b[i].seq[j] {
						t.Fatalf("reporter %d diverges at %d: %s vs %s", i, j, a[i].seq[j], b[i].seq[j])
					}
				}
			}
			// Reporters must not mirror each other.
			if len(a) > 1 && a[0].seq[0] == a[1].seq[0] && a[0].seq[1] == a[1].seq[1] {
				t.Fatalf("reporters 0 and 1 start identically: %v", a[0].seq[:2])
			}
		})
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a := runRecorded(t, Config{Reporters: 1, Reports: 100, Seed: 1})
	b := runRecorded(t, Config{Reporters: 1, Reports: 100, Seed: 2})
	same := 0
	for i := range a[0].seq {
		if a[0].seq[i] == b[0].seq[i] {
			same++
		}
	}
	if same == len(a[0].seq) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestZipfSkew(t *testing.T) {
	reps := runRecorded(t, Config{Profile: Profile{Kind: Zipf}, Reporters: 1, Reports: 5000, Seed: 7})
	max, total := 0, 0
	for _, c := range reps[0].keys {
		total += c
		if c > max {
			max = c
		}
	}
	// Under s=1.2 the hottest key takes a large share; uniform over 64k
	// keys would make max ≈ 1.
	if max < total/20 {
		t.Fatalf("hottest key has %d/%d reports — not skewed", max, total)
	}
}

func TestIncastConcentration(t *testing.T) {
	reps := runRecorded(t, Config{Profile: Profile{Kind: Incast}, Reporters: 2, Reports: 1000, Seed: 3})
	for i, r := range reps {
		if len(r.keys) > 4 {
			t.Fatalf("reporter %d touched %d keys, want ≤ 4 (hot set)", i, len(r.keys))
		}
	}
}

func TestBurstyPacing(t *testing.T) {
	cfg := Config{
		Profile:   Profile{Kind: Bursty, BurstLen: 100, BurstIdle: 100 * time.Microsecond},
		Reporters: 2,
		Reports:   500,
		Seed:      9,
	}
	a := runRecorded(t, cfg)
	b := runRecorded(t, cfg)
	for i := range a {
		for j := range a[i].seq {
			if a[i].seq[j] != b[i].seq[j] {
				t.Fatalf("bursty reporter %d diverges at %d despite same seed", i, j)
			}
		}
	}
}

func TestMixedUsesAllPrimitives(t *testing.T) {
	reps := runRecorded(t, Config{Profile: Profile{Kind: Mixed}, Reporters: 1, Reports: 1000, Seed: 5})
	seen := map[string]bool{}
	for _, s := range reps[0].seq {
		seen[s[:2]] = true
	}
	for _, op := range []string{"kw", "ki", "pc", "ap"} {
		if !seen[op] {
			t.Fatalf("mixed profile never used %s", op)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"uniform", "zipf", "bursty", "incast", "mixed"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind.String() != name {
			t.Fatalf("ProfileByName(%q).Kind = %v", name, p.Kind)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// errReporter fails every submission.
type errReporter struct{}

func (errReporter) KeyWrite(wire.Key, []byte, int) error  { return fmt.Errorf("down") }
func (errReporter) Increment(wire.Key, uint64, int) error { return fmt.Errorf("down") }
func (errReporter) Postcard(wire.Key, int, int) error     { return fmt.Errorf("down") }
func (errReporter) Append(uint32, []byte) error           { return fmt.Errorf("down") }

func TestZipfParamsValidated(t *testing.T) {
	// rand.NewZipf requires s > 1 and v >= 1; out-of-domain values must
	// error up front, not panic in the reporter goroutines.
	for _, p := range []Profile{
		{Kind: Zipf, ZipfS: 1.0},
		{Kind: Zipf, ZipfS: 0.5},
		{Kind: Zipf, ZipfS: 1.2, ZipfV: 0.5},
	} {
		if _, err := Run(Config{Profile: p, Reporters: 1, Reports: 1}, func(int) Reporter { return newMemReporter() }); err == nil {
			t.Fatalf("Run accepted invalid zipf params %+v", p)
		}
	}
}

func TestRunSurfacesErrors(t *testing.T) {
	res, err := Run(Config{Reporters: 2, Reports: 10}, func(int) Reporter { return errReporter{} })
	if err == nil {
		t.Fatal("Run with failing reporter returned nil error")
	}
	if res.Errors != 2 || res.Submitted != 0 {
		t.Fatalf("res = %+v, want 2 errors, 0 submitted", res)
	}
}
