// Package loadgen generates deterministic DTA report workloads: N
// concurrent reporter goroutines drive any Reporter implementation (the
// synchronous dta reporters or the async engine reporters) through one
// of several scenario profiles. Throughput claims are only meaningful
// under diverse, adversarial input distributions, so beyond the uniform
// baseline the generator covers Zipf-skewed key popularity, bursty
// on/off sources, incast (everyone hammering a tiny hot key set) and a
// mixed-primitive blend of all four DTA primitives.
//
// Everything derives from Config.Seed: reporter i draws from its own
// PRNG seeded as a pure function of (Seed, i), so the same config
// produces the same key/primitive sequence per reporter — and therefore
// the same per-shard report counts — regardless of goroutine scheduling.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dta/internal/wire"
)

// Reporter is the submission surface the generator drives. dta.Reporter,
// dta.ClusterReporter and dta.AsyncReporter all satisfy it.
type Reporter interface {
	KeyWrite(key wire.Key, data []byte, n int) error
	Increment(key wire.Key, delta uint64, n int) error
	Postcard(key wire.Key, hop, pathLen int) error
	Append(list uint32, data []byte) error
}

// Kind selects a workload scenario.
type Kind int

const (
	// Uniform draws keys uniformly from the key space.
	Uniform Kind = iota
	// Zipf draws keys Zipf-skewed: a few keys dominate, stressing
	// translator aggregation and single-shard hot spots.
	Zipf
	// Bursty alternates on-bursts of back-to-back reports with idle
	// gaps, stressing queue sizing and backpressure.
	Bursty
	// Incast makes every reporter hammer the same tiny hot key set
	// concurrently, concentrating load on few shards.
	Incast
	// Mixed blends all four DTA primitives over uniform keys.
	Mixed
)

func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Bursty:
		return "bursty"
	case Incast:
		return "incast"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ProfileByName resolves a scenario name ("uniform", "zipf", "bursty",
// "incast", "mixed") to its default profile.
func ProfileByName(name string) (Profile, error) {
	for _, k := range []Kind{Uniform, Zipf, Bursty, Incast, Mixed} {
		if k.String() == name {
			return Profile{Kind: k}, nil
		}
	}
	return Profile{}, fmt.Errorf("loadgen: unknown profile %q", name)
}

// Profile parameterises a scenario. Zero values select sane defaults.
type Profile struct {
	Kind Kind
	// Keys is the key-space size (0 = 1<<16).
	Keys uint64
	// ZipfS/ZipfV shape the Zipf distribution (0 = 1.2 / 1).
	ZipfS float64
	ZipfV float64
	// BurstLen is reports per on-burst (0 = 256); BurstIdle is the off
	// gap between bursts (0 = 200µs). Bursty only.
	BurstLen  int
	BurstIdle time.Duration
	// HotKeys is the incast hot set size (0 = 4).
	HotKeys uint64
	// Lists is the Append list ID space (0 = 8).
	Lists uint32
	// Redundancy is the Key-Write/Increment redundancy n (0 = 2).
	Redundancy int
	// Hops is the postcard path length (0 = 5).
	Hops int
}

func (p Profile) withDefaults() Profile {
	if p.Keys == 0 {
		p.Keys = 1 << 16
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	if p.ZipfV == 0 {
		p.ZipfV = 1
	}
	if p.BurstLen == 0 {
		p.BurstLen = 256
	}
	if p.BurstIdle == 0 {
		p.BurstIdle = 200 * time.Microsecond
	}
	if p.HotKeys == 0 {
		p.HotKeys = 4
	}
	if p.Lists == 0 {
		p.Lists = 8
	}
	if p.Redundancy == 0 {
		p.Redundancy = 2
	}
	if p.Hops == 0 {
		p.Hops = 5
	}
	return p
}

// Action is a failure-schedule verb.
type Action int

const (
	// Kill marks a collector failed (e.g. HACluster.SetDown).
	Kill Action = iota
	// Restore revives a collector (e.g. HACluster.SetUp).
	Restore
	// Partition cuts the reporter→collector link to Collector (the
	// collector stays alive for queries and resync; writes skip it).
	Partition
	// PartitionPeer cuts the peer link Collector↔Peer both ways:
	// neither can read the other's state or WAL during resync.
	PartitionPeer
	// SlowDisk injects Event.FsyncLat of latency into every fsync on
	// Collector's WAL disk (0 heals the disk).
	SlowDisk
	// Skew offsets Collector's clock by Event.Skew (may be negative;
	// 0 removes the skew).
	Skew
	// Heal clears every chaos fault on Collector (-1 = the whole
	// cluster): partitions, disk faults and clock skew.
	Heal
)

func (a Action) String() string {
	switch a {
	case Kill:
		return "kill"
	case Restore:
		return "restore"
	case Partition:
		return "partition"
	case PartitionPeer:
		return "partition-peer"
	case SlowDisk:
		return "slowdisk"
	case Skew:
		return "skew"
	case Heal:
		return "heal"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Event is one failure-schedule entry: apply Action to Collector once
// the run has submitted an After fraction of its planned reports.
// Anchoring to report progress rather than wall time keeps scenarios
// meaningful across machines of very different speeds.
type Event struct {
	// After is the trigger point as a fraction [0,1] of the run's total
	// planned reports (Reporters × Reports).
	After float64
	// Action is what to do.
	Action Action
	// Collector is the target collector index (-1 = all, Heal only).
	Collector int
	// Peer is the second collector of a PartitionPeer link.
	Peer int
	// FsyncLat is SlowDisk's injected per-fsync latency (0 heals).
	FsyncLat time.Duration
	// Skew is Skew's clock offset (negative rewinds; 0 heals).
	Skew time.Duration
}

// flapCycles is how many partition/heal rounds a flap entry expands to.
const flapCycles = 3

// ParseSchedule parses a compact schedule spec of comma-separated
// `action@fraction=target` entries. The grammar:
//
//	kill@0.25=1          mark collector 1 down
//	restore@0.75=1       revive collector 1
//	partition@0.3=1      cut the reporter→collector 1 link
//	partition@0.3=1:2    cut the peer link between collectors 1 and 2
//	flap@0.2=1/0.05      flap collector 1's reporter link: 3 cut/heal
//	                     cycles, one transition every 0.05 of the run,
//	                     ending healed
//	slowdisk@0.4=1:50ms  inject 50ms into every fsync on collector 1
//	skew@0.5=1:+2s       skew collector 1's clock forward 2s (-1s rewinds)
//	heal@0.8=*           clear every chaos fault cluster-wide (or =1 for
//	                     one collector)
//
// flap is pure syntax: it expands into Partition/Heal events, so the
// returned schedule is the fully explicit plan. An empty spec is an
// empty schedule.
func ParseSchedule(spec string) ([]Event, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Event
	for _, part := range strings.Split(spec, ",") {
		head, target, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: schedule entry %q: want action@fraction=target", part)
		}
		action, frac, ok := strings.Cut(head, "@")
		if !ok {
			return nil, fmt.Errorf("loadgen: schedule entry %q: want action@fraction=target", part)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(frac), 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("loadgen: schedule entry %q: fraction must be in [0,1]", part)
		}
		evs, err := parseEntry(strings.TrimSpace(action), f, strings.TrimSpace(target))
		if err != nil {
			return nil, fmt.Errorf("loadgen: schedule entry %q: %w", part, err)
		}
		out = append(out, evs...)
	}
	return out, nil
}

// parseEntry resolves one action/target pair into its events (one,
// except for flap's expansion).
func parseEntry(action string, f float64, target string) ([]Event, error) {
	ev := Event{After: f}
	switch action {
	case "kill", "restore":
		if action == "kill" {
			ev.Action = Kill
		} else {
			ev.Action = Restore
		}
		n, err := parseCollector(target)
		if err != nil {
			return nil, err
		}
		ev.Collector = n
		return []Event{ev}, nil
	case "partition":
		a, b, ok := strings.Cut(target, ":")
		n, err := parseCollector(a)
		if err != nil {
			return nil, err
		}
		ev.Collector = n
		if !ok {
			ev.Action = Partition
			return []Event{ev}, nil
		}
		p, err := parseCollector(b)
		if err != nil {
			return nil, err
		}
		if p == n {
			return nil, fmt.Errorf("peer link %d:%d is a self-loop", n, p)
		}
		ev.Action, ev.Peer = PartitionPeer, p
		return []Event{ev}, nil
	case "flap":
		a, b, ok := strings.Cut(target, "/")
		if !ok {
			return nil, fmt.Errorf("want collector/period, e.g. 1/0.05")
		}
		n, err := parseCollector(a)
		if err != nil {
			return nil, err
		}
		period, err := strconv.ParseFloat(b, 64)
		if err != nil || period <= 0 || period > 0.5 {
			return nil, fmt.Errorf("flap period must be in (0,0.5]")
		}
		// Round the accumulated fractions so the expanded plan formats
		// cleanly (0.3, not 0.30000000000000004).
		frac := func(x float64) float64 { return min(math.Round(x*1e9)/1e9, 1) }
		evs := make([]Event, 0, 2*flapCycles)
		for c := 0; c < flapCycles; c++ {
			at := f + float64(2*c)*period
			evs = append(evs,
				Event{After: frac(at), Action: Partition, Collector: n},
				Event{After: frac(at + period), Action: Heal, Collector: n})
		}
		return evs, nil
	case "slowdisk":
		a, b, ok := strings.Cut(target, ":")
		if !ok {
			return nil, fmt.Errorf("want collector:latency, e.g. 1:50ms")
		}
		n, err := parseCollector(a)
		if err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(b)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad fsync latency %q", b)
		}
		ev.Action, ev.Collector, ev.FsyncLat = SlowDisk, n, d
		return []Event{ev}, nil
	case "skew":
		a, b, ok := strings.Cut(target, ":")
		if !ok {
			return nil, fmt.Errorf("want collector:offset, e.g. 1:+2s")
		}
		n, err := parseCollector(a)
		if err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(b)
		if err != nil {
			return nil, fmt.Errorf("bad clock offset %q", b)
		}
		ev.Action, ev.Collector, ev.Skew = Skew, n, d
		return []Event{ev}, nil
	case "heal":
		ev.Action = Heal
		if target == "*" {
			ev.Collector = -1
			return []Event{ev}, nil
		}
		n, err := parseCollector(target)
		if err != nil {
			return nil, err
		}
		ev.Collector = n
		return []Event{ev}, nil
	default:
		return nil, fmt.Errorf("unknown action %q (want kill, restore, partition, flap, slowdisk, skew or heal)", action)
	}
}

func parseCollector(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad collector index %q", s)
	}
	return n, nil
}

// FormatSchedule renders events back into the ParseSchedule grammar
// (flap entries appear expanded — the explicit plan a run executes).
func FormatSchedule(evs []Event) string {
	parts := make([]string, len(evs))
	for i, ev := range evs {
		switch ev.Action {
		case PartitionPeer:
			parts[i] = fmt.Sprintf("partition@%g=%d:%d", ev.After, ev.Collector, ev.Peer)
		case SlowDisk:
			parts[i] = fmt.Sprintf("slowdisk@%g=%d:%s", ev.After, ev.Collector, ev.FsyncLat)
		case Skew:
			parts[i] = fmt.Sprintf("skew@%g=%d:%s", ev.After, ev.Collector, ev.Skew)
		case Heal:
			if ev.Collector < 0 {
				parts[i] = fmt.Sprintf("heal@%g=*", ev.After)
				continue
			}
			parts[i] = fmt.Sprintf("heal@%g=%d", ev.After, ev.Collector)
		default:
			parts[i] = fmt.Sprintf("%s@%g=%d", ev.Action, ev.After, ev.Collector)
		}
	}
	return strings.Join(parts, ",")
}

// ScheduleNeedsChaos reports whether any event requires a chaos plane
// (anything beyond plain kill/restore health flips).
func ScheduleNeedsChaos(evs []Event) bool {
	for _, ev := range evs {
		switch ev.Action {
		case Kill, Restore:
		default:
			return true
		}
	}
	return false
}

// Config describes one load-generation run.
type Config struct {
	Profile Profile
	// Reporters is the number of concurrent reporter goroutines (0 = 4).
	Reporters int
	// Reports is the report count per reporter (0 = 10000).
	Reports int
	// Seed fixes every reporter's key/primitive sequence.
	Seed int64
	// Drain, if non-nil, runs after all reporters finish and its time is
	// included in Elapsed — pass the engine's Drain so throughput covers
	// full ingestion, not just enqueueing.
	Drain func() error
	// Schedule lists failure events to inject while the run progresses;
	// requires Control. Events fire in After order; any still unfired
	// when the reporters finish (e.g. a restore at 1.0) are applied
	// before Drain, so a scheduled recovery always happens.
	Schedule []Event
	// Control applies one event to the system under test (e.g. mapping
	// Kill to HACluster.SetDown and Restore to SetUp). It runs on the
	// scheduler goroutine, concurrently with the reporters — which is
	// the point: failures strike mid-run.
	Control func(Event) error
}

func (c Config) withDefaults() Config {
	c.Profile = c.Profile.withDefaults()
	if c.Reporters == 0 {
		c.Reporters = 4
	}
	if c.Reports == 0 {
		c.Reports = 10000
	}
	return c
}

// Defaulted returns the config with every default applied — exactly
// what Run executes. Drivers use it to align verification parameters
// (e.g. the Key-Write redundancy to query with) instead of duplicating
// the default values.
func (c Config) Defaulted() Config { return c.withDefaults() }

// Result summarises a run.
type Result struct {
	// Submitted counts reports handed to the Reporter without error,
	// summed and per reporter goroutine.
	Submitted   uint64
	PerReporter []uint64
	// Errors counts failed submissions (first error retained in Err).
	Errors uint64
	Err    error
	// Elapsed spans goroutine start through the optional Drain.
	Elapsed time.Duration
	// EventsFired counts schedule events applied (all of them, unless
	// the run aborted on an error first).
	EventsFired int
}

// Throughput returns submitted reports per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Submitted) / r.Elapsed.Seconds()
}

// Run drives cfg.Reporters goroutines, each owning the Reporter returned
// by newReporter(i). newReporter runs on the producer goroutine, so it
// may build goroutine-local state (buffers, encoders).
func Run(cfg Config, newReporter func(i int) Reporter) (Result, error) {
	cfg = cfg.withDefaults()
	if newReporter == nil {
		return Result{}, fmt.Errorf("loadgen: nil newReporter")
	}
	if p := cfg.Profile; p.Kind == Zipf && (p.ZipfS <= 1 || p.ZipfV < 1) {
		// rand.NewZipf returns nil outside this domain, which would
		// panic in every reporter goroutine.
		return Result{}, fmt.Errorf("loadgen: zipf needs s > 1 and v >= 1 (got s=%v v=%v)", p.ZipfS, p.ZipfV)
	}
	if len(cfg.Schedule) > 0 && cfg.Control == nil {
		return Result{}, fmt.Errorf("loadgen: schedule without Control")
	}
	res := Result{PerReporter: make([]uint64, cfg.Reporters)}
	var (
		wg        sync.WaitGroup
		errCount  atomic.Uint64
		firstErr  atomic.Pointer[error]
		submitted atomic.Uint64 // run-wide progress, drives the schedule
	)
	fail := func(err error) {
		errCount.Add(1)
		firstErr.CompareAndSwap(nil, &err)
	}
	start := time.Now()

	// The scheduler fires events as the submission counter crosses each
	// threshold; whatever is left when the reporters finish is applied
	// synchronously afterwards, so scheduled recoveries always happen.
	//
	// The gate holds the next unfired event's threshold: reporters pause
	// once the counter reaches it and resume when the event has fired.
	// Without it the scheduler goroutine can starve (1-CPU boxes, -race
	// builds) and fire adjacent events back to back long past their
	// scheduled progress points, collapsing the fault window a test
	// meant to open.
	var fired atomic.Uint64
	var gate atomic.Uint64
	gate.Store(math.MaxUint64)
	schedule := append([]Event(nil), cfg.Schedule...)
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].After < schedule[j].After })
	total := uint64(cfg.Reporters) * uint64(cfg.Reports)
	stop := make(chan struct{})
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		// Whatever path exits this goroutine, reporters must not stay
		// paused at a gate nobody will ever open.
		defer gate.Store(math.MaxUint64)
		for _, ev := range schedule {
			threshold := uint64(ev.After * float64(total))
			gate.Store(threshold)
			for submitted.Load() < threshold {
				select {
				case <-stop:
					return
				default:
				}
				// Plain sleep, not time.After: a fresh timer allocation
				// every 100µs for the whole run would be GC pressure in
				// a throughput-measurement harness.
				time.Sleep(100 * time.Microsecond)
			}
			if err := cfg.Control(ev); err != nil {
				fail(err)
				return
			}
			// No gate release here: reporters stay paused at the crossed
			// threshold until the next iteration stores the following
			// event's threshold (or the deferred release runs), so they
			// cannot surge past event k+1 in the gap between firings.
			fired.Add(1)
		}
	}()

	for i := 0; i < cfg.Reporters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := newReporter(i)
			n, err := drive(cfg, i, rep, &submitted, &gate)
			if err == nil {
				// Batching reporters (e.g. the engine's) stage frames
				// locally; push them out before this goroutine exits so
				// cfg.Drain covers every submitted report.
				if f, ok := rep.(interface{ Flush() error }); ok {
					err = f.Flush()
				}
			}
			res.PerReporter[i] = n
			if err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-schedDone
	for _, ev := range schedule[fired.Load():] {
		if errCount.Load() > 0 {
			break
		}
		if err := cfg.Control(ev); err != nil {
			fail(err)
			break
		}
		fired.Add(1)
	}
	res.EventsFired = int(fired.Load())
	if cfg.Drain != nil {
		if err := cfg.Drain(); err != nil {
			fail(err)
		}
	}
	res.Elapsed = time.Since(start)
	for _, n := range res.PerReporter {
		res.Submitted += n
	}
	res.Errors = errCount.Load()
	if p := firstErr.Load(); p != nil {
		res.Err = *p
	}
	return res, res.Err
}

// reporterSeed mixes the run seed with the reporter index (splitmix64
// increment) so per-reporter streams are decorrelated but reproducible.
func reporterSeed(seed int64, i int) int64 {
	return seed + int64(i)*-0x61c8864680b583eb
}

// report is one generated submission before it reaches a Reporter.
type report struct {
	op    int // 0 KeyWrite, 1 Increment, 2 Postcard, 3 Append
	key   uint64
	delta uint64
	hop   int
	list  uint32
}

// stream derives reporter i's deterministic report sequence. drive
// (submission) and WrittenKeys (verification) both consume it, so what
// a run writes and what a verifier later expects can never diverge.
type stream struct {
	p    Profile
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newStream(cfg Config, i int) *stream {
	s := &stream{p: cfg.Profile, rng: rand.New(rand.NewSource(reporterSeed(cfg.Seed, i)))}
	if s.p.Kind == Zipf {
		s.zipf = rand.NewZipf(s.rng, s.p.ZipfS, s.p.ZipfV, s.p.Keys-1)
	}
	return s
}

func (s *stream) next() report {
	var r report
	switch s.p.Kind {
	case Zipf:
		r.key = s.zipf.Uint64()
	case Incast:
		r.key = s.rng.Uint64() % s.p.HotKeys
	default:
		r.key = s.rng.Uint64() % s.p.Keys
	}
	if s.p.Kind == Mixed {
		r.op = s.rng.Intn(4)
	}
	switch r.op {
	case 1:
		r.delta = 1 + r.key%16
	case 2:
		r.hop = s.rng.Intn(s.p.Hops)
	case 3:
		r.list = uint32(s.rng.Uint32()) % s.p.Lists
	}
	return r
}

// KeyWriteValue returns the payload every generated Key-Write for keyID
// carries: verification recomputes the expected value from the key.
func KeyWriteValue(keyID uint64) [4]byte {
	return [4]byte{byte(keyID >> 24), byte(keyID >> 16), byte(keyID >> 8), byte(keyID)}
}

// WrittenKeys replays the run's PRNG streams without submitting anything
// and returns the deduplicated, sorted set of key IDs the run Key-Writes
// (the full key set for single-primitive profiles, the KeyWrite subset
// for Mixed). Combined with KeyWriteValue it lets a driver check, after
// a failure scenario, which acknowledged writes survived.
func WrittenKeys(cfg Config) []uint64 {
	cfg = cfg.withDefaults()
	seen := make(map[uint64]struct{})
	for i := 0; i < cfg.Reporters; i++ {
		st := newStream(cfg, i)
		for n := 0; n < cfg.Reports; n++ {
			if r := st.next(); r.op == 0 {
				seen[r.key] = struct{}{}
			}
		}
	}
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// AppendedKeys replays the run's PRNG streams without submitting
// anything and returns, per Append list, the key IDs whose entries the
// run appends (duplicates preserved: lists are multisets, not sets —
// every entry is KeyWriteValue of its key). Only the Mixed profile
// appends; other profiles return an empty map. Combined with the ring
// contents after a failure scenario it lets a driver measure how much
// of each list's history survived and was resynced.
func AppendedKeys(cfg Config) map[uint32][]uint64 {
	cfg = cfg.withDefaults()
	out := make(map[uint32][]uint64)
	for i := 0; i < cfg.Reporters; i++ {
		st := newStream(cfg, i)
		for n := 0; n < cfg.Reports; n++ {
			if r := st.next(); r.op == 3 {
				out[r.list] = append(out[r.list], r.key)
			}
		}
	}
	return out
}

// drive submits cfg.Reports reports from reporter i, bumping submitted
// after each success (the schedule's progress clock). It stops at the
// first submission error: under the engine's Block policy errors mean
// the pipeline is broken, not congested.
func drive(cfg Config, i int, rep Reporter, submitted, gate *atomic.Uint64) (uint64, error) {
	p := cfg.Profile
	st := newStream(cfg, i)
	data := make([]byte, 4)
	var sent uint64
	for n := 0; n < cfg.Reports; n++ {
		r := st.next()
		key := wire.KeyFromUint64(r.key)
		v := KeyWriteValue(r.key)
		copy(data, v[:])

		var err error
		switch r.op {
		case 0:
			err = rep.KeyWrite(key, data, p.Redundancy)
		case 1:
			err = rep.Increment(key, r.delta, p.Redundancy)
		case 2:
			err = rep.Postcard(key, r.hop, p.Hops)
		case 3:
			err = rep.Append(r.list, data)
		}
		if err != nil {
			return sent, fmt.Errorf("loadgen: reporter %d report %d: %w", i, n, err)
		}
		sent++
		submitted.Add(1)
		// Pause at the next scheduled event's threshold until the
		// scheduler has fired it (see the gate in Run): fault windows
		// open at their scheduled progress points even when the
		// scheduler goroutine is slow to wake.
		for submitted.Load() >= gate.Load() {
			time.Sleep(20 * time.Microsecond)
		}
		if p.Kind == Bursty && (n+1)%p.BurstLen == 0 {
			time.Sleep(p.BurstIdle)
		}
	}
	return sent, nil
}
