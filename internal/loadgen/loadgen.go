// Package loadgen generates deterministic DTA report workloads: N
// concurrent reporter goroutines drive any Reporter implementation (the
// synchronous dta reporters or the async engine reporters) through one
// of several scenario profiles. Throughput claims are only meaningful
// under diverse, adversarial input distributions, so beyond the uniform
// baseline the generator covers Zipf-skewed key popularity, bursty
// on/off sources, incast (everyone hammering a tiny hot key set) and a
// mixed-primitive blend of all four DTA primitives.
//
// Everything derives from Config.Seed: reporter i draws from its own
// PRNG seeded as a pure function of (Seed, i), so the same config
// produces the same key/primitive sequence per reporter — and therefore
// the same per-shard report counts — regardless of goroutine scheduling.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dta/internal/wire"
)

// Reporter is the submission surface the generator drives. dta.Reporter,
// dta.ClusterReporter and dta.AsyncReporter all satisfy it.
type Reporter interface {
	KeyWrite(key wire.Key, data []byte, n int) error
	Increment(key wire.Key, delta uint64, n int) error
	Postcard(key wire.Key, hop, pathLen int) error
	Append(list uint32, data []byte) error
}

// Kind selects a workload scenario.
type Kind int

const (
	// Uniform draws keys uniformly from the key space.
	Uniform Kind = iota
	// Zipf draws keys Zipf-skewed: a few keys dominate, stressing
	// translator aggregation and single-shard hot spots.
	Zipf
	// Bursty alternates on-bursts of back-to-back reports with idle
	// gaps, stressing queue sizing and backpressure.
	Bursty
	// Incast makes every reporter hammer the same tiny hot key set
	// concurrently, concentrating load on few shards.
	Incast
	// Mixed blends all four DTA primitives over uniform keys.
	Mixed
)

func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Bursty:
		return "bursty"
	case Incast:
		return "incast"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ProfileByName resolves a scenario name ("uniform", "zipf", "bursty",
// "incast", "mixed") to its default profile.
func ProfileByName(name string) (Profile, error) {
	for _, k := range []Kind{Uniform, Zipf, Bursty, Incast, Mixed} {
		if k.String() == name {
			return Profile{Kind: k}, nil
		}
	}
	return Profile{}, fmt.Errorf("loadgen: unknown profile %q", name)
}

// Profile parameterises a scenario. Zero values select sane defaults.
type Profile struct {
	Kind Kind
	// Keys is the key-space size (0 = 1<<16).
	Keys uint64
	// ZipfS/ZipfV shape the Zipf distribution (0 = 1.2 / 1).
	ZipfS float64
	ZipfV float64
	// BurstLen is reports per on-burst (0 = 256); BurstIdle is the off
	// gap between bursts (0 = 200µs). Bursty only.
	BurstLen  int
	BurstIdle time.Duration
	// HotKeys is the incast hot set size (0 = 4).
	HotKeys uint64
	// Lists is the Append list ID space (0 = 8).
	Lists uint32
	// Redundancy is the Key-Write/Increment redundancy n (0 = 2).
	Redundancy int
	// Hops is the postcard path length (0 = 5).
	Hops int
}

func (p Profile) withDefaults() Profile {
	if p.Keys == 0 {
		p.Keys = 1 << 16
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	if p.ZipfV == 0 {
		p.ZipfV = 1
	}
	if p.BurstLen == 0 {
		p.BurstLen = 256
	}
	if p.BurstIdle == 0 {
		p.BurstIdle = 200 * time.Microsecond
	}
	if p.HotKeys == 0 {
		p.HotKeys = 4
	}
	if p.Lists == 0 {
		p.Lists = 8
	}
	if p.Redundancy == 0 {
		p.Redundancy = 2
	}
	if p.Hops == 0 {
		p.Hops = 5
	}
	return p
}

// Config describes one load-generation run.
type Config struct {
	Profile Profile
	// Reporters is the number of concurrent reporter goroutines (0 = 4).
	Reporters int
	// Reports is the report count per reporter (0 = 10000).
	Reports int
	// Seed fixes every reporter's key/primitive sequence.
	Seed int64
	// Drain, if non-nil, runs after all reporters finish and its time is
	// included in Elapsed — pass the engine's Drain so throughput covers
	// full ingestion, not just enqueueing.
	Drain func() error
}

func (c Config) withDefaults() Config {
	c.Profile = c.Profile.withDefaults()
	if c.Reporters == 0 {
		c.Reporters = 4
	}
	if c.Reports == 0 {
		c.Reports = 10000
	}
	return c
}

// Result summarises a run.
type Result struct {
	// Submitted counts reports handed to the Reporter without error,
	// summed and per reporter goroutine.
	Submitted   uint64
	PerReporter []uint64
	// Errors counts failed submissions (first error retained in Err).
	Errors uint64
	Err    error
	// Elapsed spans goroutine start through the optional Drain.
	Elapsed time.Duration
}

// Throughput returns submitted reports per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Submitted) / r.Elapsed.Seconds()
}

// Run drives cfg.Reporters goroutines, each owning the Reporter returned
// by newReporter(i). newReporter runs on the producer goroutine, so it
// may build goroutine-local state (buffers, encoders).
func Run(cfg Config, newReporter func(i int) Reporter) (Result, error) {
	cfg = cfg.withDefaults()
	if newReporter == nil {
		return Result{}, fmt.Errorf("loadgen: nil newReporter")
	}
	if p := cfg.Profile; p.Kind == Zipf && (p.ZipfS <= 1 || p.ZipfV < 1) {
		// rand.NewZipf returns nil outside this domain, which would
		// panic in every reporter goroutine.
		return Result{}, fmt.Errorf("loadgen: zipf needs s > 1 and v >= 1 (got s=%v v=%v)", p.ZipfS, p.ZipfV)
	}
	res := Result{PerReporter: make([]uint64, cfg.Reporters)}
	var (
		wg       sync.WaitGroup
		errCount atomic.Uint64
		firstErr atomic.Pointer[error]
	)
	start := time.Now()
	for i := 0; i < cfg.Reporters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := newReporter(i)
			n, err := drive(cfg, i, rep)
			if err == nil {
				// Batching reporters (e.g. the engine's) stage frames
				// locally; push them out before this goroutine exits so
				// cfg.Drain covers every submitted report.
				if f, ok := rep.(interface{ Flush() error }); ok {
					err = f.Flush()
				}
			}
			res.PerReporter[i] = n
			if err != nil {
				errCount.Add(1)
				firstErr.CompareAndSwap(nil, &err)
			}
		}(i)
	}
	wg.Wait()
	if cfg.Drain != nil {
		if err := cfg.Drain(); err != nil {
			errCount.Add(1)
			firstErr.CompareAndSwap(nil, &err)
		}
	}
	res.Elapsed = time.Since(start)
	for _, n := range res.PerReporter {
		res.Submitted += n
	}
	res.Errors = errCount.Load()
	if p := firstErr.Load(); p != nil {
		res.Err = *p
	}
	return res, res.Err
}

// reporterSeed mixes the run seed with the reporter index (splitmix64
// increment) so per-reporter streams are decorrelated but reproducible.
func reporterSeed(seed int64, i int) int64 {
	return seed + int64(i)*-0x61c8864680b583eb
}

// drive submits cfg.Reports reports from reporter i. It stops at the
// first submission error: under the engine's Block policy errors mean
// the pipeline is broken, not congested.
func drive(cfg Config, i int, rep Reporter) (uint64, error) {
	p := cfg.Profile
	rng := rand.New(rand.NewSource(reporterSeed(cfg.Seed, i)))
	var zipf *rand.Zipf
	if p.Kind == Zipf {
		zipf = rand.NewZipf(rng, p.ZipfS, p.ZipfV, p.Keys-1)
	}
	data := make([]byte, 4)
	var sent uint64
	for n := 0; n < cfg.Reports; n++ {
		var keyID uint64
		switch p.Kind {
		case Zipf:
			keyID = zipf.Uint64()
		case Incast:
			keyID = rng.Uint64() % p.HotKeys
		default:
			keyID = rng.Uint64() % p.Keys
		}
		key := wire.KeyFromUint64(keyID)
		data[0], data[1], data[2], data[3] = byte(keyID>>24), byte(keyID>>16), byte(keyID>>8), byte(keyID)

		op := 0 // KeyWrite
		if p.Kind == Mixed {
			op = rng.Intn(4)
		}
		var err error
		switch op {
		case 0:
			err = rep.KeyWrite(key, data, p.Redundancy)
		case 1:
			err = rep.Increment(key, 1+keyID%16, p.Redundancy)
		case 2:
			err = rep.Postcard(key, rng.Intn(p.Hops), p.Hops)
		case 3:
			err = rep.Append(uint32(rng.Uint32())%p.Lists, data)
		}
		if err != nil {
			return sent, fmt.Errorf("loadgen: reporter %d report %d: %w", i, n, err)
		}
		sent++
		if p.Kind == Bursty && (n+1)%p.BurstLen == 0 {
			time.Sleep(p.BurstIdle)
		}
	}
	return sent, nil
}
