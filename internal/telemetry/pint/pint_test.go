package pint

import (
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestFragmentHopDeterministicAndCovering(t *testing.T) {
	s := New(5, 2, nil)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		p := g.Next()
		x := p.Flow.Key()
		h1 := s.fragmentHop(x, p.Seq)
		h2 := s.fragmentHop(x, p.Seq)
		if h1 != h2 {
			t.Fatal("fragment hop not deterministic")
		}
		if h1 < 0 || h1 >= 5 {
			t.Fatalf("hop %d out of range", h1)
		}
		seen[h1] = true
	}
	if len(seen) != 5 {
		t.Errorf("only %d/5 hops selected across 2000 packets", len(seen))
	}
}

func TestProcessEmitsOneFragmentPerPacket(t *testing.T) {
	s := New(5, 2, func(x wire.Key, hop int) uint8 { return uint8(hop*10 + 1) })
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	for i := 0; i < 100; i++ {
		p := g.Next()
		reports := s.Process(&p, nil)
		if len(reports) != 1 {
			t.Fatalf("reports = %d", len(reports))
		}
		r := reports[0]
		if r.Header.Primitive != wire.PrimKeyWrite || r.KeyWrite.Redundancy != 2 {
			t.Fatalf("report: %+v", r)
		}
		if len(r.Data) != ValueSize {
			t.Fatalf("fragment size %d", len(r.Data))
		}
		// The fragment key differs from the plain flow key and is
		// recoverable from (flow, hop).
		x := p.Flow.Key()
		hop := s.fragmentHop(x, p.Seq)
		if r.KeyWrite.Key != ReconstructKey(x, hop) {
			t.Fatal("fragment key mismatch")
		}
		if r.KeyWrite.Key == x {
			t.Fatal("fragment key collides with flow key space")
		}
		if want := uint8(hop*10 + 1); r.Data[0] != want {
			t.Fatalf("value = %d, want %d", r.Data[0], want)
		}
	}
}

func TestFragmentKeysDistinctPerHop(t *testing.T) {
	x := wire.KeyFromUint64(7)
	seen := map[wire.Key]bool{}
	for hop := 0; hop < 5; hop++ {
		k := ReconstructKey(x, hop)
		if seen[k] {
			t.Fatalf("hop %d key repeats", hop)
		}
		seen[k] = true
	}
}
