// Package pint models PINT (Probabilistic In-band Network Telemetry,
// SIGCOMM'20) report generation as Table 2 maps it onto DTA: "1B reports
// with 5-tuple keys, using redundancies for data compression through
// n = f(pktID)".
//
// PINT compresses per-packet telemetry by having each packet carry only
// a probabilistic fragment; which hop's value a packet carries is a
// global hash of the packet ID, so the collector reconstructs the whole
// path from many packets of the same flow. Under DTA each fragment
// becomes a Key-Write keyed by (flow, hop) with a 1-byte value.
package pint

import (
	"dta/internal/crc"
	"dta/internal/trace"
	"dta/internal/wire"
)

// ValueSize is the PINT fragment size (1 byte).
const ValueSize = 1

// Source emits one fragment per packet: the value of hop f(pktID) on
// the packet's path.
type Source struct {
	// Hops is the path bound.
	Hops int
	// Redundancy is the Key-Write N for fragments.
	Redundancy uint8
	// Value returns the telemetry value of hop i of flow x (e.g. a
	// compressed switch ID digest).
	Value func(x wire.Key, hop int) uint8

	eng *crc.Engine
}

// New builds a source.
func New(hops int, redundancy uint8, value func(x wire.Key, hop int) uint8) *Source {
	if hops < 1 {
		hops = 5
	}
	if redundancy == 0 {
		redundancy = 1
	}
	return &Source{Hops: hops, Redundancy: redundancy, Value: value, eng: crc.New(crc.Q)}
}

// fragmentHop selects which hop this packet reports: the global
// consensus hash n = f(pktID) of the paper.
func (s *Source) fragmentHop(x wire.Key, seq uint32) int {
	var buf [wire.KeySize + 4]byte
	copy(buf[:], x[:])
	buf[wire.KeySize] = byte(seq >> 24)
	buf[wire.KeySize+1] = byte(seq >> 16)
	buf[wire.KeySize+2] = byte(seq >> 8)
	buf[wire.KeySize+3] = byte(seq)
	return int(s.eng.Sum(buf[:]) % uint32(s.Hops))
}

// fragmentKey derives the Key-Write key for (flow, hop): the hop index
// replaces the key's padding byte, keeping fragments of one flow in
// distinct slots.
func fragmentKey(x wire.Key, hop int) wire.Key {
	k := x
	k[wire.KeySize-1] = byte(hop) | 0x80
	return k
}

// Process consumes one packet and appends its fragment report.
func (s *Source) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	x := p.Flow.Key()
	hop := s.fragmentHop(x, p.Seq)
	v := uint8(hop + 1)
	if s.Value != nil {
		v = s.Value(x, hop)
	}
	r := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: s.Redundancy, Key: fragmentKey(x, hop)},
	}
	r.Data = []byte{v}
	return append(dst, r)
}

// ReconstructKey returns the Key-Write key to query for hop i of flow x.
func ReconstructKey(x wire.Key, hop int) wire.Key { return fragmentKey(x, hop) }
