package inttel

import (
	"encoding/binary"
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestPathModelValidation(t *testing.T) {
	if _, err := NewPathModel(0, 1, 5); err == nil {
		t.Error("zero switches accepted")
	}
	if _, err := NewPathModel(10, 0, 5); err == nil {
		t.Error("zero min hops accepted")
	}
	if _, err := NewPathModel(10, 5, 3); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewPathModel(10, 1, 9); err == nil {
		t.Error("max > 8 accepted")
	}
}

func TestPathModelDeterministicAndBounded(t *testing.T) {
	m, err := NewPathModel(1024, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 500; v++ {
		x := wire.KeyFromUint64(v)
		n := m.Len(x)
		if n < 2 || n > 5 {
			t.Fatalf("path length %d outside [2,5]", n)
		}
		path := m.Path(x, nil)
		if len(path) != n {
			t.Fatalf("path len %d != Len %d", len(path), n)
		}
		for _, id := range path {
			if id < 1 || id > 1024 {
				t.Fatalf("switch ID %d outside [1,1024]", id)
			}
		}
		// Deterministic.
		again := m.Path(x, nil)
		for i := range path {
			if path[i] != again[i] {
				t.Fatal("path not deterministic")
			}
		}
	}
}

func TestPathModelFixedLength(t *testing.T) {
	m, _ := NewPathModel(64, 5, 5)
	for v := uint64(0); v < 100; v++ {
		if m.Len(wire.KeyFromUint64(v)) != 5 {
			t.Fatal("fixed-length model varied")
		}
	}
}

func TestValueSpace(t *testing.T) {
	m, _ := NewPathModel(16, 1, 5)
	vs := m.ValueSpace()
	if len(vs) != 16 || vs[0] != 1 || vs[15] != 16 {
		t.Errorf("value space = %v", vs)
	}
}

func TestSamplerRate(t *testing.T) {
	if _, err := NewSampler(0, 200); err == nil {
		t.Error("zero numerator accepted")
	}
	if _, err := NewSampler(3, 2); err == nil {
		t.Error("rate > 1 accepted")
	}
	s, _ := NewSampler(1, 200) // 0.5%
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	sampled := 0
	const n = 200000
	for i := 0; i < n; i++ {
		p := g.Next()
		if s.Sample(&p) {
			sampled++
		}
	}
	rate := float64(sampled) / n
	if rate < 0.003 || rate > 0.008 {
		t.Errorf("sampling rate %.4f, want ≈0.005", rate)
	}
	// Full sampling.
	all, _ := NewSampler(1, 1)
	p := g.Next()
	if !all.Sample(&p) {
		t.Error("1/1 sampler rejected a packet")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	// The same packet must be sampled identically everywhere (that is
	// how all hops of a packet report or skip together).
	a, _ := NewSampler(1, 10)
	b, _ := NewSampler(1, 10)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if a.Sample(&p) != b.Sample(&p) {
			t.Fatal("samplers disagree")
		}
	}
}

func TestPostcardSourceEmitsFullPaths(t *testing.T) {
	m, _ := NewPathModel(256, 3, 5)
	s, _ := NewSampler(1, 1)
	src := &PostcardSource{Paths: m, Sampler: s}
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	for i := 0; i < 100; i++ {
		p := g.Next()
		reports := src.Reports(&p, nil)
		x := p.Flow.Key()
		want := m.Len(x)
		if len(reports) != want {
			t.Fatalf("got %d postcards, want %d", len(reports), want)
		}
		for hop, r := range reports {
			if r.Header.Primitive != wire.PrimPostcarding {
				t.Fatal("wrong primitive")
			}
			pc := r.Postcard
			if pc.Key != x || int(pc.Hop) != hop || int(pc.PathLen) != want {
				t.Fatalf("postcard %d: %+v", hop, pc)
			}
			if pc.Value != m.SwitchID(x, hop) {
				t.Fatalf("postcard value %d != path model %d", pc.Value, m.SwitchID(x, hop))
			}
		}
	}
}

func TestSinkSourcePathPayload(t *testing.T) {
	m, _ := NewPathModel(256, 5, 5)
	s, _ := NewSampler(1, 1)
	src := &SinkSource{Paths: m, Sampler: s, Redundancy: 2}
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	p := g.Next()
	reports := src.Reports(&p, nil)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Header.Primitive != wire.PrimKeyWrite || r.KeyWrite.Redundancy != 2 {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Data) != PathData {
		t.Fatalf("payload %dB, want %d", len(r.Data), PathData)
	}
	x := p.Flow.Key()
	for hop := 0; hop < 5; hop++ {
		got := binary.BigEndian.Uint32(r.Data[hop*4:])
		if got != m.SwitchID(x, hop) {
			t.Errorf("hop %d = %d, want %d", hop, got, m.SwitchID(x, hop))
		}
	}
}

func TestCongestionSourceThreshold(t *testing.T) {
	src := &CongestionSource{ListID: 7, Threshold: 10000, DrainPerNs: 0.01}
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	events := 0
	for i := 0; i < 20000; i++ {
		p := g.Next()
		reports := src.Reports(&p, nil)
		for _, r := range reports {
			if r.Header.Primitive != wire.PrimAppend || r.Append.ListID != 7 {
				t.Fatalf("bad report %+v", r)
			}
			depth := binary.BigEndian.Uint32(r.Data)
			if depth <= 10000 {
				t.Fatalf("event below threshold: %d", depth)
			}
			events++
		}
	}
	if events == 0 {
		t.Error("no congestion events with slow drain")
	}
	// A fast-draining queue produces none.
	fast := &CongestionSource{ListID: 7, Threshold: 1 << 30, DrainPerNs: 1e6}
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if rs := fast.Reports(&p, nil); len(rs) != 0 {
			t.Fatal("event despite huge threshold")
		}
	}
}
