// Package inttel models In-band Network Telemetry (INT) report
// generation, the primary workload of the paper's evaluation (§6.1, §6.5,
// §6.6).
//
// Two INT working modes matter to DTA:
//
//   - INT-XD/MX ("postcarding"): every traversed switch exports a 4 B
//     postcard describing its local observation of the packet; the
//     collector reassembles per-packet paths. DTA maps these to the
//     Postcarding primitive keyed by (flow, hop).
//   - INT-MD ("path tracing"): metadata accumulates in the packet header
//     and the sink switch exports the whole path (5×4 B switch IDs for a
//     fat-tree) in one report. DTA maps these to Key-Write keyed by the
//     flow 5-tuple.
//
// Reports are sampled (the paper uses 0.5% to reach Table 1's 19 Mpps per
// switch) and deterministic per flow so tests can predict paths.
package inttel

import (
	"encoding/binary"
	"fmt"

	"dta/internal/crc"
	"dta/internal/trace"
	"dta/internal/wire"
)

// PathModel deterministically assigns each flow a path of switch IDs, a
// stand-in for a routed topology: hop i of flow x is a hash of (x, i)
// into the switch ID space. Path lengths vary between MinHops and
// MaxHops as DC paths do (1 to 5 hops in a fat tree).
type PathModel struct {
	// Switches is |V|: the number of distinct switch IDs.
	Switches uint32
	// MinHops and MaxHops bound path lengths.
	MinHops, MaxHops int

	eng *crc.Engine
}

// NewPathModel builds a path model.
func NewPathModel(switches uint32, minHops, maxHops int) (*PathModel, error) {
	if switches == 0 {
		return nil, fmt.Errorf("inttel: zero switches")
	}
	if minHops < 1 || maxHops < minHops || maxHops > 8 {
		return nil, fmt.Errorf("inttel: bad hop range [%d,%d]", minHops, maxHops)
	}
	return &PathModel{Switches: switches, MinHops: minHops, MaxHops: maxHops, eng: crc.New(crc.Koopman2)}, nil
}

// Len returns the path length of flow x.
func (m *PathModel) Len(x wire.Key) int {
	if m.MinHops == m.MaxHops {
		return m.MinHops
	}
	h := m.eng.Sum(x[:])
	return m.MinHops + int(h%uint32(m.MaxHops-m.MinHops+1))
}

// SwitchID returns the switch ID at hop i of flow x. IDs are in
// [1, Switches]; 0 is never a valid ID.
func (m *PathModel) SwitchID(x wire.Key, hop int) uint32 {
	var buf [wire.KeySize + 1]byte
	copy(buf[:], x[:])
	buf[wire.KeySize] = byte(hop)
	return m.eng.Sum(buf[:])%m.Switches + 1
}

// Path appends flow x's full path to dst and returns it.
func (m *PathModel) Path(x wire.Key, dst []uint32) []uint32 {
	n := m.Len(x)
	for i := 0; i < n; i++ {
		dst = append(dst, m.SwitchID(x, i))
	}
	return dst
}

// ValueSpace enumerates all switch IDs, for pre-populating the
// Postcarding lookup table.
func (m *PathModel) ValueSpace() []uint32 {
	vs := make([]uint32, m.Switches)
	for i := range vs {
		vs[i] = uint32(i) + 1
	}
	return vs
}

// Sampler decides which packets generate INT reports. It is deterministic
// (hash of flow and sequence) so distributed switches sample the same
// packets, as INT deployments arrange.
type Sampler struct {
	// Num/Den is the sampling rate (e.g. 1/200 for 0.5%).
	Num, Den uint32
	eng      *crc.Engine
}

// NewSampler builds a sampler with rate num/den. num=den samples all.
func NewSampler(num, den uint32) (*Sampler, error) {
	if num == 0 || den == 0 || num > den {
		return nil, fmt.Errorf("inttel: bad sampling rate %d/%d", num, den)
	}
	return &Sampler{Num: num, Den: den, eng: crc.New(crc.Q)}, nil
}

// Sample reports whether the packet is selected.
func (s *Sampler) Sample(p *trace.Packet) bool {
	if s.Num == s.Den {
		return true
	}
	k := p.Flow.Key()
	h := s.eng.Sum64Pair(binary.BigEndian.Uint64(k[:8]), uint64(p.Seq))
	return h%s.Den < s.Num
}

// PostcardSource emits INT-XD postcards: one DTA Postcarding report per
// hop of each sampled packet.
type PostcardSource struct {
	Paths   *PathModel
	Sampler *Sampler
}

// Reports appends the postcard reports for packet p to dst.
func (s *PostcardSource) Reports(p *trace.Packet, dst []wire.Report) []wire.Report {
	if !s.Sampler.Sample(p) {
		return dst
	}
	x := p.Flow.Key()
	n := s.Paths.Len(x)
	for hop := 0; hop < n; hop++ {
		dst = append(dst, wire.Report{
			Header: wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
			Postcard: wire.Postcard{
				Key:     x,
				Hop:     uint8(hop),
				PathLen: uint8(n),
				Value:   s.Paths.SwitchID(x, hop),
			},
		})
	}
	return dst
}

// PathData is the INT-MD sink payload: up to 5 switch IDs, 4 B each.
const PathData = 20

// SinkSource emits INT-MD path-tracing reports: the egress sink exports
// one Key-Write report carrying the accumulated path.
type SinkSource struct {
	Paths   *PathModel
	Sampler *Sampler
	// Redundancy is the Key-Write N stamped on reports.
	Redundancy uint8
}

// Reports appends the sink report for packet p to dst.
func (s *SinkSource) Reports(p *trace.Packet, dst []wire.Report) []wire.Report {
	if !s.Sampler.Sample(p) {
		return dst
	}
	x := p.Flow.Key()
	n := s.Paths.Len(x)
	var data [PathData]byte
	for hop := 0; hop < n && hop < 5; hop++ {
		binary.BigEndian.PutUint32(data[hop*4:], s.Paths.SwitchID(x, hop))
	}
	red := s.Redundancy
	if red == 0 {
		red = 1
	}
	r := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: red, Key: x},
	}
	r.Data = append([]byte(nil), data[:]...)
	return append(dst, r)
}

// CongestionSource emits INT congestion events (Table 2: "INT sinks
// append 4B reports to a list of network congestion events"): whenever
// the modelled egress queue exceeds a threshold, the queue depth is
// appended to a per-switch event list.
type CongestionSource struct {
	// ListID is the Append list collecting this switch's events.
	ListID uint32
	// Threshold is the queue depth (bytes) above which events fire.
	Threshold int
	// DrainPerNs is the queue drain rate in bytes per nanosecond.
	DrainPerNs float64

	queue    float64
	lastTime uint64
}

// Reports appends a congestion event report if packet p pushed the
// modelled queue over threshold.
func (s *CongestionSource) Reports(p *trace.Packet, dst []wire.Report) []wire.Report {
	if s.lastTime != 0 && p.Time > s.lastTime {
		drained := float64(p.Time-s.lastTime) * s.DrainPerNs
		s.queue -= drained
		if s.queue < 0 {
			s.queue = 0
		}
	}
	s.lastTime = p.Time
	s.queue += float64(p.Size)
	if s.queue <= float64(s.Threshold) {
		return dst
	}
	var data [4]byte
	binary.BigEndian.PutUint32(data[:], uint32(s.queue))
	r := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: s.ListID},
	}
	r.Data = append([]byte(nil), data[:]...)
	return append(dst, r)
}
