package sonata

import (
	"encoding/binary"
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestReduceAndEpochExport(t *testing.T) {
	// Count TCP packets per destination IP.
	q := NewQuery(9, func(p *trace.Packet) bool { return p.Flow.Proto == 6 },
		nil, 1<<12, 3, 2)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	truth := map[uint64]uint32{}
	for i := 0; i < 5000; i++ {
		p := g.Next()
		if p.Flow.Proto == 6 {
			truth[uint64(binary.BigEndian.Uint32(p.Flow.DstIP[:]))]++
		}
		if reports := q.Process(&p, nil); len(reports) != 0 {
			t.Fatalf("unexpected spill below threshold: %v", reports)
		}
	}
	results := q.EpochEnd(nil)
	if len(results) != len(truth) {
		t.Fatalf("results = %d, truth groups = %d", len(results), len(truth))
	}
	for _, r := range results {
		if r.Header.Primitive != wire.PrimKeyWrite || r.KeyWrite.Redundancy != 2 {
			t.Fatalf("result: %+v", r)
		}
		group := binary.BigEndian.Uint64(r.Data[0:8])
		count := binary.BigEndian.Uint32(r.Data[8:12])
		if truth[group] != count {
			t.Fatalf("group %d: exported %d, truth %d", group, count, truth[group])
		}
		if r.KeyWrite.Key != q.ResultKey(group) {
			t.Fatal("result key mismatch")
		}
	}
	// Epoch reset: a second export is empty.
	if len(q.EpochEnd(nil)) != 0 {
		t.Error("epoch table not reset")
	}
}

func TestSpillOnOverflow(t *testing.T) {
	q := NewQuery(1, nil, nil, 4, 7, 1) // only 4 groups fit
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	var spills []wire.Report
	for i := 0; i < 5000; i++ {
		p := g.Next()
		spills = q.Process(&p, spills)
	}
	if q.Spilled == 0 || len(spills) == 0 {
		t.Fatal("no spills despite tiny reduction table")
	}
	for _, r := range spills {
		if r.Header.Primitive != wire.PrimAppend || r.Append.ListID != 7 {
			t.Fatalf("spill: %+v", r)
		}
		if len(r.Data) != 13 {
			t.Fatalf("spill tuple size %d", len(r.Data))
		}
	}
	// Reduced + spilled covers every matched packet.
	var reduced uint64
	for _, r := range q.EpochEnd(nil) {
		reduced += uint64(binary.BigEndian.Uint32(r.Data[8:12]))
	}
	if reduced+q.Spilled != q.Matched {
		t.Errorf("reduced %d + spilled %d != matched %d", reduced, q.Spilled, q.Matched)
	}
}

func TestFilterExcludes(t *testing.T) {
	q := NewQuery(2, func(p *trace.Packet) bool { return false }, nil, 16, 0, 1)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	for i := 0; i < 100; i++ {
		p := g.Next()
		if out := q.Process(&p, nil); len(out) != 0 {
			t.Fatal("filtered packet produced output")
		}
	}
	if q.Matched != 0 || len(q.EpochEnd(nil)) != 0 {
		t.Error("filter leaked packets")
	}
}
