// Package sonata models Sonata (SIGCOMM'18) query-driven telemetry as
// Table 2 maps it onto DTA:
//
//   - "Reporting fixed-size network query results using queryID keys"
//     → Key-Write keyed by query ID;
//   - "Appending query-specific packet tuples from switches to lists at
//     streaming processors" → Append, one list per query.
//
// A Query is a compiled dataflow (filter → key → reduce) evaluated on
// the switch over an epoch; at epoch end, reduced results export via
// Key-Write and, when the reduction overflows the data plane, raw
// tuples spill to the query's Append list.
package sonata

import (
	"encoding/binary"

	"dta/internal/trace"
	"dta/internal/wire"
)

// Query is one compiled Sonata query.
type Query struct {
	// ID keys the query's results in the collector.
	ID uint32
	// Filter selects packets (nil = all).
	Filter func(*trace.Packet) bool
	// KeyOf groups packets (e.g. by destination IP).
	KeyOf func(*trace.Packet) uint64
	// SpillThreshold bounds the per-key reduction table; keys beyond it
	// spill raw tuples to the Append list (the "raw data transfer" path).
	SpillThreshold int
	// ListID is the spill list.
	ListID uint32
	// Redundancy is the Key-Write N for results.
	Redundancy uint8

	counts map[uint64]uint32
	// Stats
	Matched uint64
	Spilled uint64
}

// NewQuery compiles a query.
func NewQuery(id uint32, filter func(*trace.Packet) bool, keyOf func(*trace.Packet) uint64, spillThreshold int, listID uint32, redundancy uint8) *Query {
	if keyOf == nil {
		keyOf = func(p *trace.Packet) uint64 {
			return uint64(binary.BigEndian.Uint32(p.Flow.DstIP[:]))
		}
	}
	if redundancy == 0 {
		redundancy = 1
	}
	if spillThreshold < 1 {
		spillThreshold = 1 << 12
	}
	return &Query{
		ID: id, Filter: filter, KeyOf: keyOf,
		SpillThreshold: spillThreshold, ListID: listID, Redundancy: redundancy,
		counts: make(map[uint64]uint32),
	}
}

// resultKey builds the Key-Write key for (queryID, groupKey).
func (q *Query) resultKey(group uint64) wire.Key {
	var k wire.Key
	binary.BigEndian.PutUint32(k[0:4], q.ID)
	binary.BigEndian.PutUint64(k[4:12], group)
	return k
}

// Process consumes one packet; keys past the spill threshold emit raw
// tuples immediately.
func (q *Query) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	if q.Filter != nil && !q.Filter(p) {
		return dst
	}
	q.Matched++
	group := q.KeyOf(p)
	if _, known := q.counts[group]; !known && len(q.counts) >= q.SpillThreshold {
		// Reduction table full: spill the raw tuple to the stream
		// processor's list.
		q.Spilled++
		k := p.Flow.Key()
		r := wire.Report{
			Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
			Append: wire.Append{ListID: q.ListID},
		}
		r.Data = append([]byte(nil), k[:13]...)
		return append(dst, r)
	}
	q.counts[group]++
	return dst
}

// EpochEnd exports every reduced (group, count) result as a Key-Write
// and resets the reduction table.
func (q *Query) EpochEnd(dst []wire.Report) []wire.Report {
	for group, count := range q.counts {
		var data [12]byte
		binary.BigEndian.PutUint64(data[0:8], group)
		binary.BigEndian.PutUint32(data[8:12], count)
		r := wire.Report{
			Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
			KeyWrite: wire.KeyWrite{Redundancy: q.Redundancy, Key: q.resultKey(group)},
		}
		r.Data = append([]byte(nil), data[:]...)
		dst = append(dst, r)
	}
	q.counts = make(map[uint64]uint32)
	return dst
}

// ResultKey exposes the key for querying a (queryID, group) result.
func (q *Query) ResultKey(group uint64) wire.Key { return q.resultKey(group) }
