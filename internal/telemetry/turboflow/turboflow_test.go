package turboflow

import (
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestValidation(t *testing.T) {
	if _, err := New(100, 1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := New(0, 1); err == nil {
		t.Error("zero records accepted")
	}
	tbl, err := New(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Redundancy != 1 {
		t.Error("default redundancy not applied")
	}
}

func TestEvictionsPreservePacketCounts(t *testing.T) {
	tbl, _ := New(32, 2) // tiny: constant evictions
	cfg := trace.DefaultConfig()
	cfg.Flows = 300
	g, _ := trace.NewGenerator(cfg)
	truth := make(map[trace.FlowKey]uint64)
	var reports []wire.Report
	const pkts = 15000
	for i := 0; i < pkts; i++ {
		p := g.Next()
		truth[p.Flow]++
		reports = tbl.Process(&p, reports)
	}
	reports = tbl.Flush(reports)
	if tbl.Stats.Packets != pkts {
		t.Errorf("Stats.Packets = %d", tbl.Stats.Packets)
	}
	got := make(map[wire.Key]uint64)
	var total uint64
	for _, r := range reports {
		if r.Header.Primitive != wire.PrimKeyIncrement || r.KeyIncrement.Redundancy != 2 {
			t.Fatalf("report: %+v", r)
		}
		got[r.KeyIncrement.Key] += r.KeyIncrement.Delta
		total += r.KeyIncrement.Delta
	}
	if total != pkts {
		t.Fatalf("evicted total %d != %d packets", total, pkts)
	}
	for f, want := range truth {
		if got[f.Key()] != want {
			t.Fatalf("flow %v: evicted %d, want %d", f, got[f.Key()], want)
		}
	}
}

func TestFlushEmptiesTable(t *testing.T) {
	tbl, _ := New(64, 1)
	cfg := trace.DefaultConfig()
	g, _ := trace.NewGenerator(cfg)
	p := g.Next()
	tbl.Process(&p, nil)
	if n := len(tbl.Flush(nil)); n != 1 {
		t.Fatalf("first flush = %d", n)
	}
	if n := len(tbl.Flush(nil)); n != 0 {
		t.Fatalf("second flush = %d", n)
	}
}
