// Package turboflow models TurboFlow-style flow record generation
// (Table 2: "Sending 4B counters from evicted microflow-records for
// aggregation using flow key as keys", via Key-Increment).
//
// The switch keeps a small microflow record table; when a new flow
// hashes onto an occupied record, the incumbent's packet and byte counts
// are evicted to the collector as Key-Increment deltas, where the
// Count-Min store aggregates them into full flow records.
package turboflow

import (
	"dta/internal/crc"
	"dta/internal/trace"
	"dta/internal/wire"
)

// MicroflowTable is the on-switch record cache.
type MicroflowTable struct {
	// Redundancy is the Key-Increment N stamped on evictions.
	Redundancy uint8

	eng     *crc.Engine
	mask    uint32
	keys    []trace.FlowKey
	valid   []bool
	packets []uint64
	// Stats counts table activity.
	Stats Stats
}

// Stats counts microflow table activity.
type Stats struct {
	Packets   uint64
	Evictions uint64
}

// New builds a table with the given number of records (a power of two).
func New(records int, redundancy uint8) (*MicroflowTable, error) {
	if records <= 0 || records&(records-1) != 0 {
		return nil, errNotPow2(records)
	}
	if redundancy == 0 {
		redundancy = 1
	}
	return &MicroflowTable{
		Redundancy: redundancy,
		eng:        crc.New(crc.AUTOSAR),
		mask:       uint32(records - 1),
		keys:       make([]trace.FlowKey, records),
		valid:      make([]bool, records),
		packets:    make([]uint64, records),
	}, nil
}

type errNotPow2 int

func (e errNotPow2) Error() string {
	return "turboflow: record count must be a power of two"
}

func (t *MicroflowTable) slot(f trace.FlowKey) int {
	k := f.Key()
	return int(t.eng.Sum(k[:]) & t.mask)
}

// Process consumes one packet; a colliding flow evicts the incumbent
// record as a Key-Increment report.
func (t *MicroflowTable) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	t.Stats.Packets++
	s := t.slot(p.Flow)
	if t.valid[s] && t.keys[s] != p.Flow {
		dst = append(dst, t.evict(s))
	}
	if !t.valid[s] {
		t.valid[s] = true
		t.keys[s] = p.Flow
	}
	t.packets[s]++
	return dst
}

// Flush evicts every record (end of epoch).
func (t *MicroflowTable) Flush(dst []wire.Report) []wire.Report {
	for s := range t.keys {
		if t.valid[s] {
			dst = append(dst, t.evict(s))
		}
	}
	return dst
}

func (t *MicroflowTable) evict(s int) wire.Report {
	t.Stats.Evictions++
	r := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement},
		KeyIncrement: wire.KeyIncrement{
			Redundancy: t.Redundancy,
			Key:        t.keys[s].Key(),
			Delta:      t.packets[s],
		},
	}
	t.valid[s] = false
	t.packets[s] = 0
	return r
}
