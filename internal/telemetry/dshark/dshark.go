// Package dshark models dShark (NSDI'19) distributed packet-trace
// analysis as Table 2 maps it onto DTA: "Parsers append packet summaries
// to lists hosted by Grouper-servers".
//
// Parsers run near capture points and condense each mirrored packet into
// a fixed summary; summaries for the same packet (seen at different
// taps) must reach the same grouper, so the parser shards by a packet
// identity hash onto per-grouper Append lists.
package dshark

import (
	"encoding/binary"

	"dta/internal/crc"
	"dta/internal/trace"
	"dta/internal/wire"
)

// SummarySize is the packet summary: 13 B 5-tuple + 4 B IP-ID-like
// packet hash + 2 B length + 1 B tap = 20 B.
const SummarySize = 20

// Parser condenses packets into summaries sharded across groupers.
type Parser struct {
	// TapID identifies this capture point.
	TapID uint8
	// Groupers is the number of grouper servers (one Append list each).
	Groupers uint32
	// BaseList is the first grouper's list ID.
	BaseList uint32

	eng *crc.Engine
	// Summaries counts emitted summaries.
	Summaries uint64
}

// NewParser builds a parser.
func NewParser(tapID uint8, baseList, groupers uint32) *Parser {
	if groupers == 0 {
		groupers = 1
	}
	return &Parser{TapID: tapID, Groupers: groupers, BaseList: baseList, eng: crc.New(crc.AUTOSAR)}
}

// packetIdentity hashes the invariant packet fields: two taps seeing the
// same packet compute the same identity, which is what lets the grouper
// join the multi-tap views.
func (p *Parser) packetIdentity(pkt *trace.Packet) uint32 {
	k := pkt.Flow.Key()
	var buf [wire.KeySize + 4]byte
	copy(buf[:], k[:])
	binary.BigEndian.PutUint32(buf[wire.KeySize:], pkt.Seq)
	return p.eng.Sum(buf[:])
}

// GrouperFor returns the grouper list a packet's summaries land on.
func (p *Parser) GrouperFor(pkt *trace.Packet) uint32 {
	return p.BaseList + p.packetIdentity(pkt)%p.Groupers
}

// Process emits the packet's summary report.
func (p *Parser) Process(pkt *trace.Packet, dst []wire.Report) []wire.Report {
	p.Summaries++
	var data [SummarySize]byte
	k := pkt.Flow.Key()
	copy(data[:13], k[:13])
	binary.BigEndian.PutUint32(data[13:17], p.packetIdentity(pkt))
	binary.BigEndian.PutUint16(data[17:19], uint16(pkt.Size))
	data[19] = p.TapID
	r := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: p.GrouperFor(pkt)},
	}
	r.Data = append([]byte(nil), data[:]...)
	return append(dst, r)
}

// DecodeSummary parses a summary entry.
func DecodeSummary(b []byte) (flow wire.Key, identity uint32, size uint16, tap uint8) {
	copy(flow[:13], b[:13])
	return flow, binary.BigEndian.Uint32(b[13:17]), binary.BigEndian.Uint16(b[17:19]), b[19]
}
