package dshark

import (
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestSummariesShardConsistently(t *testing.T) {
	// Two taps seeing the same packet must pick the same grouper and
	// the same identity — that is what lets groupers join views.
	a := NewParser(1, 100, 8)
	b := NewParser(2, 100, 8)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	for i := 0; i < 500; i++ {
		p := g.Next()
		if a.GrouperFor(&p) != b.GrouperFor(&p) {
			t.Fatal("taps disagree on grouper")
		}
		ra := a.Process(&p, nil)[0]
		rb := b.Process(&p, nil)[0]
		_, idA, _, tapA := DecodeSummary(ra.Data)
		_, idB, _, tapB := DecodeSummary(rb.Data)
		if idA != idB {
			t.Fatal("taps disagree on packet identity")
		}
		if tapA != 1 || tapB != 2 {
			t.Fatalf("tap ids %d %d", tapA, tapB)
		}
	}
}

func TestSummaryContents(t *testing.T) {
	p0 := NewParser(3, 0, 4)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	pkt := g.Next()
	r := p0.Process(&pkt, nil)[0]
	if r.Header.Primitive != wire.PrimAppend || len(r.Data) != SummarySize {
		t.Fatalf("report %+v", r)
	}
	if r.Append.ListID >= 4 {
		t.Fatalf("list %d outside grouper range", r.Append.ListID)
	}
	flow, _, size, _ := DecodeSummary(r.Data)
	want := pkt.Flow.Key()
	for i := 0; i < 13; i++ {
		if flow[i] != want[i] {
			t.Fatal("flow bytes mismatch")
		}
	}
	if int(size) != pkt.Size {
		t.Errorf("size %d != %d", size, pkt.Size)
	}
	if p0.Summaries != 1 {
		t.Errorf("summaries = %d", p0.Summaries)
	}
}

func TestGroupersBalanced(t *testing.T) {
	p0 := NewParser(1, 0, 4)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	counts := make([]int, 4)
	const pkts = 8000
	for i := 0; i < pkts; i++ {
		pkt := g.Next()
		counts[p0.GrouperFor(&pkt)]++
	}
	for i, c := range counts {
		if c < pkts/8 {
			t.Errorf("grouper %d starved: %d/%d", i, c, pkts)
		}
	}
}
