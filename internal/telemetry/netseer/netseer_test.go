package netseer

import (
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := trace.FlowKey{
		SrcIP: [4]byte{10, 0, 1, 2}, DstIP: [4]byte{10, 3, 4, 5},
		SrcPort: 5000, DstPort: 443, Proto: 6,
	}
	var buf [EntrySize]byte
	Encode(buf[:], f, 0xdeadbeef, ReasonTTLExpired)
	flow, seq, reason := Decode(buf[:])
	want := f.Key()
	for i := 0; i < 13; i++ {
		if flow[i] != want[i] {
			t.Fatalf("flow byte %d mismatch", i)
		}
	}
	if seq != 0xdeadbeef || reason != ReasonTTLExpired {
		t.Errorf("seq=%#x reason=%d", seq, reason)
	}
}

func TestLossEventsOnlyOnLoss(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.LossRate = 0.02
	g, _ := trace.NewGenerator(cfg)
	q := &LossEvents{ListID: 3}
	var reports []wire.Report
	losses := 0
	for i := 0; i < 30000; i++ {
		p := g.Next()
		before := len(reports)
		reports = q.Process(&p, reports)
		if p.Lost {
			losses++
			if len(reports) != before+1 {
				t.Fatal("loss without report")
			}
		} else if len(reports) != before {
			t.Fatal("report without loss")
		}
	}
	if losses == 0 {
		t.Fatal("no losses generated")
	}
	if q.Events != uint64(losses) {
		t.Errorf("Events = %d, want %d", q.Events, losses)
	}
	for _, r := range reports {
		if r.Header.Primitive != wire.PrimAppend || r.Append.ListID != 3 {
			t.Fatalf("report: %+v", r)
		}
		if len(r.Data) != EntrySize {
			t.Fatalf("entry size %d, want %d", len(r.Data), EntrySize)
		}
	}
}
