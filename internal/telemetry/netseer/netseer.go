// Package netseer models NetSeer-style flow event telemetry: a stream of
// packet-loss events exported from the data plane (Table 1: up to 950K
// loss events per second per switch; Table 2: "Appending 18B loss event
// reports into network-wide list of packet losses").
//
// Each loss event carries the flow 5-tuple (13 B), the dropped packet's
// sequence number (4 B) and a drop-reason code (1 B): 18 B total,
// appended to a network-wide Append list.
package netseer

import (
	"encoding/binary"

	"dta/internal/trace"
	"dta/internal/wire"
)

// EntrySize is the loss-event payload size.
const EntrySize = 18

// Reason codes for packet drops.
const (
	ReasonQueueOverflow = 1
	ReasonACLDeny       = 2
	ReasonTTLExpired    = 3
	ReasonCorrupt       = 4
)

// LossEvents exports one Append report per observed packet loss.
type LossEvents struct {
	// ListID is the network-wide loss list.
	ListID uint32
	// Events counts exported losses.
	Events uint64
}

// Encode serialises a loss event payload into dst (≥ EntrySize bytes).
func Encode(dst []byte, flow trace.FlowKey, seq uint32, reason uint8) {
	k := flow.Key()
	copy(dst[:13], k[:13])
	binary.BigEndian.PutUint32(dst[13:17], seq)
	dst[17] = reason
}

// Decode parses a loss event payload.
func Decode(b []byte) (flow wire.Key, seq uint32, reason uint8) {
	copy(flow[:13], b[:13])
	return flow, binary.BigEndian.Uint32(b[13:17]), b[17]
}

// Process consumes one packet and appends a loss report if it was lost.
func (q *LossEvents) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	if !p.Lost {
		return dst
	}
	q.Events++
	var data [EntrySize]byte
	Encode(data[:], p.Flow, p.Seq, ReasonQueueOverflow)
	r := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: q.ListID},
	}
	r.Data = append([]byte(nil), data[:]...)
	return append(dst, r)
}
