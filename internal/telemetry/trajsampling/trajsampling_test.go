package trajsampling

import (
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestAllHopsAgreeOnSampling(t *testing.T) {
	s := NewSampler(1, 10, 20)
	hops := []*Hop{
		{Sampler: s, Index: 0},
		{Sampler: s, Index: 1},
		{Sampler: s, Index: 2, PathLen: 3},
	}
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	sampledPkts := 0
	for i := 0; i < 5000; i++ {
		p := g.Next()
		n := 0
		for _, h := range hops {
			n += len(h.Process(&p, nil))
		}
		if n != 0 && n != len(hops) {
			t.Fatalf("inconsistent sampling: %d/%d hops reported", n, len(hops))
		}
		if n > 0 {
			sampledPkts++
		}
	}
	rate := float64(sampledPkts) / 5000
	if rate < 0.05 || rate > 0.15 {
		t.Errorf("sampling rate %.3f, want ≈0.1", rate)
	}
}

func TestLabelsConsistentAndBounded(t *testing.T) {
	s := NewSampler(1, 1, 20)
	h0 := &Hop{Sampler: s, Index: 0}
	h1 := &Hop{Sampler: s, Index: 1}
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	for i := 0; i < 200; i++ {
		p := g.Next()
		r0 := h0.Process(&p, nil)[0]
		r1 := h1.Process(&p, nil)[0]
		if r0.Postcard.Value != r1.Postcard.Value {
			t.Fatal("hops disagree on label")
		}
		if r0.Postcard.Value >= 1<<20 {
			t.Fatalf("label %d exceeds 20 bits", r0.Postcard.Value)
		}
		if r0.Postcard.Key != r1.Postcard.Key {
			t.Fatal("hops disagree on packet ID")
		}
		if r0.Postcard.Hop != 0 || r1.Postcard.Hop != 1 {
			t.Fatal("hop indexes wrong")
		}
		if r0.Header.Primitive != wire.PrimPostcarding {
			t.Fatal("wrong primitive")
		}
	}
}

func TestDistinctPacketsSameFlowDistinctIDs(t *testing.T) {
	// Trajectory sampling is per *packet*: two packets of the same flow
	// must carry different IDs (different Seq).
	s := NewSampler(1, 1, 20)
	cfg := trace.DefaultConfig()
	cfg.Flows = 1
	g, _ := trace.NewGenerator(cfg)
	p1, p2 := g.Next(), g.Next()
	for p2.Seq == p1.Seq {
		p2 = g.Next()
	}
	if s.packetID(&p1) == s.packetID(&p2) {
		t.Error("distinct packets share an ID")
	}
}
