// Package trajsampling models Trajectory Sampling (Duffield &
// Grossglauser) as Table 2 maps it onto DTA: "Collection of unique
// packet labels from all hops for sampled packets" via the Postcarding
// primitive.
//
// Every switch applies the same hash to the invariant packet content;
// packets whose hash falls in the sampling range are labelled, and every
// hop reports (packetID, hop, label). Because the sampling decision is
// content-deterministic, either all hops of a packet report or none do,
// and the collector reconstructs complete trajectories.
package trajsampling

import (
	"encoding/binary"

	"dta/internal/crc"
	"dta/internal/trace"
	"dta/internal/wire"
)

// Sampler is the consistent content-based sampler shared by all hops.
type Sampler struct {
	// Num/Den is the sampling fraction.
	Num, Den uint32
	// LabelBits is the size of the reported label.
	LabelBits int

	hashEng  *crc.Engine
	labelEng *crc.Engine
}

// NewSampler builds a sampler.
func NewSampler(num, den uint32, labelBits int) *Sampler {
	if den == 0 {
		den = 1
	}
	if labelBits <= 0 || labelBits > 32 {
		labelBits = 20
	}
	return &Sampler{
		Num: num, Den: den, LabelBits: labelBits,
		hashEng:  crc.New(crc.Koopman),
		labelEng: crc.New(crc.K32K),
	}
}

// packetID is the invariant content digest all hops agree on.
func (s *Sampler) packetID(p *trace.Packet) wire.Key {
	k := p.Flow.Key()
	binary.BigEndian.PutUint32(k[wire.KeySize-4:], p.Seq)
	return k
}

// Sampled reports whether every hop will label this packet.
func (s *Sampler) Sampled(p *trace.Packet) bool {
	id := s.packetID(p)
	return s.hashEng.Sum(id[:])%s.Den < s.Num
}

// Label computes the packet's unique label.
func (s *Sampler) Label(p *trace.Packet) uint32 {
	id := s.packetID(p)
	return s.labelEng.Sum(id[:]) & (1<<uint(s.LabelBits) - 1)
}

// Hop is one switch running trajectory sampling.
type Hop struct {
	Sampler *Sampler
	// Index is this switch's position on the path.
	Index uint8
	// PathLen annotates the full path length (egress only; 0 otherwise).
	PathLen uint8
	// Reports counts emitted labels.
	Reports uint64
}

// Process emits this hop's label report for sampled packets.
func (h *Hop) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	if !h.Sampler.Sampled(p) {
		return dst
	}
	h.Reports++
	return append(dst, wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
		Postcard: wire.Postcard{
			Key:     h.Sampler.packetID(p),
			Hop:     h.Index,
			PathLen: h.PathLen,
			Value:   h.Sampler.Label(p),
		},
	})
}
