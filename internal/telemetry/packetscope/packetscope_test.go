package packetscope

import (
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func TestTraversalKeyEmbedsSwitchAndFlow(t *testing.T) {
	f := trace.FlowKey{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1, DstPort: 2, Proto: 6}
	k1 := TraversalKey(7, f)
	k2 := TraversalKey(8, f)
	if k1 == k2 {
		t.Error("different switches share a key")
	}
	g := f
	g.SrcPort = 3
	if TraversalKey(7, f) == TraversalKey(7, g) {
		t.Error("different flows share a key")
	}
}

func TestTraversalCountsGrow(t *testing.T) {
	m := New(5, 9, 2)
	cfg := trace.DefaultConfig()
	cfg.LossRate = 0
	cfg.Flows = 3
	g, _ := trace.NewGenerator(cfg)
	var last wire.Report
	counts := map[trace.FlowKey]int{}
	for i := 0; i < 100; i++ {
		p := g.Next()
		counts[p.Flow]++
		reports := m.Process(&p, nil)
		if len(reports) != 1 {
			t.Fatalf("reports = %d (no drops expected)", len(reports))
		}
		last = reports[0]
		v := DecodeTraversal(last.Data)
		for s := 0; s < len(v); s++ {
			if int(v[s]) != counts[p.Flow] && counts[p.Flow] <= 255 {
				t.Fatalf("stage %d visits = %d, want %d", s, v[s], counts[p.Flow])
			}
		}
	}
	if last.Header.Primitive != wire.PrimKeyWrite || last.KeyWrite.Redundancy != 2 {
		t.Errorf("traversal report: %+v", last.Header)
	}
}

func TestDropEmitsPipelineLossEvent(t *testing.T) {
	m := New(5, 9, 1)
	cfg := trace.DefaultConfig()
	cfg.LossRate = 1.0 // every packet drops
	g, _ := trace.NewGenerator(cfg)
	var p trace.Packet
	for {
		p = g.Next()
		if p.Lost {
			break
		}
	}
	reports := m.Process(&p, nil)
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want loss event + traversal", len(reports))
	}
	loss := reports[0]
	if loss.Header.Primitive != wire.PrimAppend || loss.Append.ListID != 9 {
		t.Fatalf("loss report: %+v", loss)
	}
	if len(loss.Data) != DropEventSize {
		t.Fatalf("loss entry %dB, want %d", len(loss.Data), DropEventSize)
	}
	prefix, stage := DecodeDrop(loss.Data)
	k := p.Flow.Key()
	for i := 0; i < 12; i++ {
		if prefix[i] != k[i] {
			t.Fatal("flow prefix mismatch")
		}
	}
	if stage < StageParser || stage > StageDeparser {
		t.Errorf("stage %d out of range", stage)
	}
	if m.Drops != 1 {
		t.Errorf("drops = %d", m.Drops)
	}
}
