// Package packetscope models PacketScope (SOSR'20) intra-switch
// monitoring as Table 2 maps it onto DTA:
//
//   - "Report fixed-size per-flow per-switch traversal information using
//     <switchID, 5-tuple> as key" → Key-Write;
//   - "On packet drop: send 14B pipeline-traversal information to a
//     central list of pipeline-loss events" → Append.
//
// PacketScope watches a packet's life *inside* one switch: which
// pipeline stages it traversed and where it died if dropped.
package packetscope

import (
	"dta/internal/trace"
	"dta/internal/wire"
)

// Stage identifiers of the modelled pipeline.
const (
	StageParser = 1 + iota
	StageIngressMatch
	StageTrafficManager
	StageEgressMatch
	StageDeparser
	numStages
)

// TraversalSize is the per-flow traversal record: 1 B per stage visit
// count for five stages + 3 B pad = 8 B.
const TraversalSize = 8

// DropEventSize is the pipeline-loss record: 13 B key prefix truncated
// to 12 + drop stage + pad = 14 B, per Table 2.
const DropEventSize = 14

// Monitor tracks flow traversal inside one switch.
type Monitor struct {
	// SwitchID scopes the keys.
	SwitchID uint32
	// LossList receives pipeline-drop events.
	LossList uint32
	// Redundancy is the Key-Write N.
	Redundancy uint8

	visits map[trace.FlowKey][numStages - 1]uint8
	// Drops counts pipeline losses.
	Drops uint64
}

// New builds a monitor.
func New(switchID, lossList uint32, redundancy uint8) *Monitor {
	if redundancy == 0 {
		redundancy = 1
	}
	return &Monitor{
		SwitchID:   switchID,
		LossList:   lossList,
		Redundancy: redundancy,
		visits:     make(map[trace.FlowKey][numStages - 1]uint8),
	}
}

// TraversalKey builds the <switchID, 5-tuple> Key-Write key: the switch
// ID occupies the key's padding bytes after the 13-byte 5-tuple.
func TraversalKey(switchID uint32, flow trace.FlowKey) wire.Key {
	k := flow.Key()
	// Bytes 13..15 are zero padding; fold the switch ID in.
	k[13] = byte(switchID >> 16)
	k[14] = byte(switchID >> 8)
	k[15] = byte(switchID)
	return k
}

// dropStage deterministically assigns where a dropped packet died.
func dropStage(p *trace.Packet) uint8 {
	return uint8(p.Seq%uint32(numStages-1)) + 1
}

// Process consumes one packet: the flow's traversal record updates (and
// re-exports via Key-Write), and drops emit pipeline-loss events.
func (m *Monitor) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	v := m.visits[p.Flow]
	for s := 0; s < numStages-1; s++ {
		if v[s] < 0xff {
			v[s]++
		}
	}
	if p.Lost {
		// The packet died mid-pipeline: truncate its stage visits past
		// the drop point and append the loss event.
		stage := dropStage(p)
		for s := int(stage); s < numStages-1; s++ {
			v[s]--
		}
		m.Drops++
		var data [DropEventSize]byte
		k := p.Flow.Key()
		copy(data[:12], k[:12])
		data[12] = stage
		r := wire.Report{
			Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
			Append: wire.Append{ListID: m.LossList},
		}
		r.Data = append([]byte(nil), data[:]...)
		dst = append(dst, r)
	}
	m.visits[p.Flow] = v

	var data [TraversalSize]byte
	copy(data[:numStages-1], v[:])
	r := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: m.Redundancy, Key: TraversalKey(m.SwitchID, p.Flow)},
	}
	r.Data = append([]byte(nil), data[:]...)
	return append(dst, r)
}

// DecodeDrop parses a pipeline-loss entry.
func DecodeDrop(b []byte) (flowPrefix [12]byte, stage uint8) {
	copy(flowPrefix[:], b[:12])
	return flowPrefix, b[12]
}

// DecodeTraversal parses a traversal record into per-stage visit counts.
func DecodeTraversal(b []byte) [numStages - 1]uint8 {
	var v [numStages - 1]uint8
	copy(v[:], b[:numStages-1])
	return v
}
