// Package marple models the Marple query workloads the paper integrates
// with DTA (§6.1, Fig. 7b): language-directed switch queries whose
// results stream to a collector.
//
// Three queries from the evaluation plus the host-counter example of
// Table 2 are implemented, each mapped to the DTA primitive the paper
// assigns it:
//
//   - Flowlet sizes  → Append (flow ID + flowlet size into per-range lists)
//   - TCP timeouts   → Key-Write (per-flow timeout count, queryable by 5-tuple)
//   - Lossy flows    → Append (flows whose loss rate exceeds a threshold,
//     stored chronologically in per-range lists)
//   - Host counters  → Key-Increment (per-source-IP byte counts)
//
// Each query consumes the annotated packets of package trace as the
// on-switch dataflow would and emits DTA reports.
package marple

import (
	"encoding/binary"

	"dta/internal/trace"
	"dta/internal/wire"
)

// FlowletEntry is the Append payload of the flowlet-size query:
// the 13 B flow 5-tuple followed by a 4 B packet count.
const FlowletEntry = 17

// FlowletSizes tracks per-flow flowlet packet counts and reports each
// completed flowlet.
type FlowletSizes struct {
	// Lists is the number of Append lists flowlets are spread across
	// (one per size range, so operators can build histograms).
	Lists uint32
	// BaseList is the first list ID used.
	BaseList uint32

	current map[trace.FlowKey]uint32
}

// NewFlowletSizes builds the query with the given list fan-out.
func NewFlowletSizes(baseList, lists uint32) *FlowletSizes {
	if lists == 0 {
		lists = 1
	}
	return &FlowletSizes{Lists: lists, BaseList: baseList, current: make(map[trace.FlowKey]uint32)}
}

// listFor buckets a flowlet size into a list: log2 size ranges.
func (q *FlowletSizes) listFor(size uint32) uint32 {
	b := uint32(0)
	for size > 1 && b < q.Lists-1 {
		size >>= 1
		b++
	}
	return q.BaseList + b
}

// Process consumes one packet and appends any completed-flowlet report.
func (q *FlowletSizes) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	if p.FlowletStart {
		if prev, ok := q.current[p.Flow]; ok && prev > 0 {
			dst = append(dst, q.report(p.Flow, prev))
		}
		q.current[p.Flow] = 0
	}
	q.current[p.Flow]++
	return dst
}

// Flush reports all in-progress flowlets (end of measurement epoch).
func (q *FlowletSizes) Flush(dst []wire.Report) []wire.Report {
	for f, n := range q.current {
		if n > 0 {
			dst = append(dst, q.report(f, n))
		}
	}
	q.current = make(map[trace.FlowKey]uint32)
	return dst
}

func (q *FlowletSizes) report(f trace.FlowKey, n uint32) wire.Report {
	var data [FlowletEntry]byte
	k := f.Key()
	copy(data[:13], k[:13])
	binary.BigEndian.PutUint32(data[13:], n)
	r := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: q.listFor(n)},
	}
	r.Data = append([]byte(nil), data[:]...)
	return r
}

// TCPTimeouts counts per-flow RTO events and keeps the collector's
// key-value view current with a Key-Write after each change, so operators
// can query the timeout count of any flow by its 5-tuple.
type TCPTimeouts struct {
	// Redundancy is the Key-Write N.
	Redundancy uint8

	counts map[trace.FlowKey]uint32
}

// NewTCPTimeouts builds the query.
func NewTCPTimeouts(redundancy uint8) *TCPTimeouts {
	if redundancy == 0 {
		redundancy = 1
	}
	return &TCPTimeouts{Redundancy: redundancy, counts: make(map[trace.FlowKey]uint32)}
}

// Count returns the local count for a flow (ground truth for tests).
func (q *TCPTimeouts) Count(f trace.FlowKey) uint32 { return q.counts[f] }

// Process consumes one packet and reports the updated count on timeout.
func (q *TCPTimeouts) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	if !p.TimedOut {
		return dst
	}
	q.counts[p.Flow]++
	var data [4]byte
	binary.BigEndian.PutUint32(data[:], q.counts[p.Flow])
	r := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: q.Redundancy, Key: p.Flow.Key()},
	}
	r.Data = append([]byte(nil), data[:]...)
	return append(dst, r)
}

// LossyEntry is the Append payload of the lossy-flows query: the 13 B
// flow 5-tuple (Table 2: "Report 13B flows to a list with packet loss
// rate greater than threshold").
const LossyEntry = 13

// LossyFlows reports flows whose loss rate within a window of packets
// exceeds a threshold, into one of several lists by loss-rate range.
type LossyFlows struct {
	// Window is the per-flow packet window.
	Window uint32
	// ThresholdPct is the loss percentage above which a flow is reported.
	ThresholdPct float64
	// BaseList and Lists spread reports over loss-rate ranges.
	BaseList uint32
	Lists    uint32

	stats map[trace.FlowKey]*lossWindow
}

type lossWindow struct {
	pkts, losses uint32
}

// NewLossyFlows builds the query.
func NewLossyFlows(window uint32, thresholdPct float64, baseList, lists uint32) *LossyFlows {
	if lists == 0 {
		lists = 1
	}
	if window == 0 {
		window = 128
	}
	return &LossyFlows{
		Window: window, ThresholdPct: thresholdPct,
		BaseList: baseList, Lists: lists,
		stats: make(map[trace.FlowKey]*lossWindow),
	}
}

// Process consumes one packet; at each window end a lossy flow is
// reported and its window reset.
func (q *LossyFlows) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	w := q.stats[p.Flow]
	if w == nil {
		w = &lossWindow{}
		q.stats[p.Flow] = w
	}
	w.pkts++
	if p.Lost {
		w.losses++
	}
	if w.pkts < q.Window {
		return dst
	}
	rate := 100 * float64(w.losses) / float64(w.pkts)
	if rate > q.ThresholdPct {
		list := q.BaseList
		if q.Lists > 1 {
			// Bucket by how far past the threshold the flow is.
			over := rate - q.ThresholdPct
			idx := uint32(over / (100 / float64(q.Lists)))
			if idx >= q.Lists {
				idx = q.Lists - 1
			}
			list += idx
		}
		k := p.Flow.Key()
		r := wire.Report{
			Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
			Append: wire.Append{ListID: list},
		}
		r.Data = append([]byte(nil), k[:LossyEntry]...)
		dst = append(dst, r)
	}
	*w = lossWindow{}
	return dst
}

// HostCounters aggregates per-source-host byte counts in a small on-switch
// cache and exports increments on eviction (Table 2's addition-based
// variant, via Key-Increment).
type HostCounters struct {
	// Slots is the cache size; collisions evict.
	Slots int
	// Redundancy is the Key-Increment N.
	Redundancy uint8

	keys   []hostKey
	counts []uint64
}

type hostKey struct {
	ip    [4]byte
	valid bool
}

// NewHostCounters builds the cache.
func NewHostCounters(slots int, redundancy uint8) *HostCounters {
	if slots < 1 {
		slots = 1024
	}
	if redundancy == 0 {
		redundancy = 1
	}
	return &HostCounters{
		Slots: slots, Redundancy: redundancy,
		keys:   make([]hostKey, slots),
		counts: make([]uint64, slots),
	}
}

// hostSlot hashes an IP to a cache slot.
func (q *HostCounters) hostSlot(ip [4]byte) int {
	h := uint32(2166136261)
	for _, b := range ip {
		h = (h ^ uint32(b)) * 16777619
	}
	return int(h % uint32(q.Slots))
}

func hostTelemetryKey(ip [4]byte) wire.Key {
	var k wire.Key
	copy(k[:4], ip[:])
	return k
}

// Process consumes one packet; a cache collision exports the evicted
// host's accumulated count as a Key-Increment.
func (q *HostCounters) Process(p *trace.Packet, dst []wire.Report) []wire.Report {
	slot := q.hostSlot(p.Flow.SrcIP)
	e := &q.keys[slot]
	if e.valid && e.ip != p.Flow.SrcIP {
		dst = append(dst, q.evict(slot))
	}
	if !e.valid {
		e.valid = true
		e.ip = p.Flow.SrcIP
	}
	q.counts[slot] += uint64(p.Size)
	return dst
}

// Flush evicts every occupied slot (end of epoch).
func (q *HostCounters) Flush(dst []wire.Report) []wire.Report {
	for slot := range q.keys {
		if q.keys[slot].valid {
			dst = append(dst, q.evict(slot))
		}
	}
	return dst
}

func (q *HostCounters) evict(slot int) wire.Report {
	e := &q.keys[slot]
	r := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement},
		KeyIncrement: wire.KeyIncrement{
			Redundancy: q.Redundancy,
			Key:        hostTelemetryKey(e.ip),
			Delta:      q.counts[slot],
		},
	}
	e.valid = false
	q.counts[slot] = 0
	return r
}
