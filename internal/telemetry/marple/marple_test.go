package marple

import (
	"encoding/binary"
	"testing"

	"dta/internal/trace"
	"dta/internal/wire"
)

func gen(t *testing.T, mutate func(*trace.Config)) *trace.Generator {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Flows = 500
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFlowletSizesReportsOnGap(t *testing.T) {
	q := NewFlowletSizes(10, 8)
	g := gen(t, func(c *trace.Config) { c.FlowletGapProb = 0.2 })
	var reports []wire.Report
	for i := 0; i < 20000; i++ {
		p := g.Next()
		reports = q.Process(&p, reports)
	}
	if len(reports) == 0 {
		t.Fatal("no flowlet reports")
	}
	for _, r := range reports {
		if r.Header.Primitive != wire.PrimAppend {
			t.Fatal("wrong primitive")
		}
		if r.Append.ListID < 10 || r.Append.ListID >= 18 {
			t.Fatalf("list %d outside [10,18)", r.Append.ListID)
		}
		if len(r.Data) != FlowletEntry {
			t.Fatalf("entry size %d", len(r.Data))
		}
		if n := binary.BigEndian.Uint32(r.Data[13:]); n == 0 {
			t.Fatal("zero-size flowlet reported")
		}
	}
	// Larger flowlets land in higher lists.
	small := q.listFor(1)
	big := q.listFor(1 << 20)
	if big <= small {
		t.Errorf("list bucketing not monotone: %d vs %d", small, big)
	}
}

func TestFlowletFlushReportsInProgress(t *testing.T) {
	q := NewFlowletSizes(0, 1)
	g := gen(t, nil)
	p := g.Next()
	q.Process(&p, nil)
	reports := q.Flush(nil)
	if len(reports) != 1 {
		t.Fatalf("flush reports = %d, want 1", len(reports))
	}
	if n := binary.BigEndian.Uint32(reports[0].Data[13:]); n != 1 {
		t.Errorf("flowlet size = %d, want 1", n)
	}
	if len(q.Flush(nil)) != 0 {
		t.Error("second flush not empty")
	}
}

func TestTCPTimeoutsCountsAndReports(t *testing.T) {
	q := NewTCPTimeouts(2)
	g := gen(t, func(c *trace.Config) {
		c.LossRate = 0.05
		c.TimeoutRate = 1.0 // every loss times out
	})
	var reports []wire.Report
	timeouts := 0
	for i := 0; i < 30000; i++ {
		p := g.Next()
		before := len(reports)
		reports = q.Process(&p, reports)
		if p.TimedOut {
			timeouts++
			if len(reports) != before+1 {
				t.Fatal("timeout did not produce a report")
			}
			r := reports[len(reports)-1]
			if r.Header.Primitive != wire.PrimKeyWrite || r.KeyWrite.Redundancy != 2 {
				t.Fatalf("report header: %+v", r)
			}
			if r.KeyWrite.Key != p.Flow.Key() {
				t.Fatal("report key mismatch")
			}
			got := binary.BigEndian.Uint32(r.Data)
			if got != q.Count(p.Flow) {
				t.Fatalf("reported %d, local count %d", got, q.Count(p.Flow))
			}
		} else if len(reports) != before {
			t.Fatal("report without timeout")
		}
	}
	if timeouts == 0 {
		t.Fatal("no timeouts generated")
	}
}

func TestLossyFlowsThreshold(t *testing.T) {
	// With 20% loss every window of every flow should qualify at a 5%
	// threshold; with 0% loss nothing should.
	lossy := NewLossyFlows(32, 5, 100, 4)
	g := gen(t, func(c *trace.Config) { c.LossRate = 0.2 })
	var reports []wire.Report
	for i := 0; i < 40000; i++ {
		p := g.Next()
		reports = lossy.Process(&p, reports)
	}
	if len(reports) == 0 {
		t.Fatal("no lossy-flow reports at 20% loss")
	}
	for _, r := range reports {
		if r.Header.Primitive != wire.PrimAppend || len(r.Data) != LossyEntry {
			t.Fatalf("report: %+v", r)
		}
		if r.Append.ListID < 100 || r.Append.ListID >= 104 {
			t.Fatalf("list %d outside range", r.Append.ListID)
		}
	}

	clean := NewLossyFlows(32, 5, 100, 4)
	g2 := gen(t, func(c *trace.Config) { c.LossRate = 0 })
	var cleanReports []wire.Report
	for i := 0; i < 40000; i++ {
		p := g2.Next()
		cleanReports = clean.Process(&p, cleanReports)
	}
	if len(cleanReports) != 0 {
		t.Errorf("%d lossy reports with zero loss", len(cleanReports))
	}
}

func TestHostCountersEvictionsPreserveTotals(t *testing.T) {
	q := NewHostCounters(64, 1) // tiny cache: frequent evictions
	g := gen(t, nil)
	totals := make(map[[4]byte]uint64)
	var reports []wire.Report
	const pkts = 20000
	for i := 0; i < pkts; i++ {
		p := g.Next()
		totals[p.Flow.SrcIP] += uint64(p.Size)
		reports = q.Process(&p, reports)
	}
	reports = q.Flush(reports)
	// Sum of evicted deltas per host must equal the ground truth.
	got := make(map[[4]byte]uint64)
	for _, r := range reports {
		if r.Header.Primitive != wire.PrimKeyIncrement {
			t.Fatal("wrong primitive")
		}
		var ip [4]byte
		copy(ip[:], r.KeyIncrement.Key[:4])
		got[ip] += r.KeyIncrement.Delta
	}
	for ip, want := range totals {
		if got[ip] != want {
			t.Fatalf("host %v: evicted %d, want %d", ip, got[ip], want)
		}
	}
}

func TestHostCountersFlushIdempotent(t *testing.T) {
	q := NewHostCounters(16, 1)
	g := gen(t, nil)
	p := g.Next()
	q.Process(&p, nil)
	if n := len(q.Flush(nil)); n != 1 {
		t.Fatalf("first flush = %d", n)
	}
	if n := len(q.Flush(nil)); n != 0 {
		t.Fatalf("second flush = %d", n)
	}
}
