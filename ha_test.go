package dta

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

// haOptions is fullOptions with a roomier Key-Write store, so multi-
// hundred-key scenarios are not dominated by slot-overwrite noise.
func haOptions() Options {
	o := fullOptions()
	o.KeyWrite = &KeyWriteOptions{Slots: 1 << 16, DataSize: 4}
	return o
}

func keyData(i uint64) []byte {
	var d [4]byte
	binary.BigEndian.PutUint32(d[:], uint32(i))
	return d[:]
}

func TestHAClusterValidation(t *testing.T) {
	if _, err := NewHACluster(0, 1, haOptions()); err == nil {
		t.Error("zero-size cluster accepted")
	}
	if _, err := NewHACluster(2, 0, haOptions()); err == nil {
		t.Error("zero replication accepted")
	}
	if _, err := NewHACluster(2, 3, haOptions()); err == nil {
		t.Error("replication factor beyond cluster size accepted")
	}
	if _, err := NewHACluster(2, 9, haOptions()); err == nil {
		t.Error("replication factor beyond MaxReplicas accepted")
	}
}

// TestHAClusterReplicatedWrites: every report lands on all R owners,
// and each owner can answer for it independently.
func TestHAClusterReplicatedWrites(t *testing.T) {
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 200
	for i := uint64(0); i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		owners := c.Owners(k)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %d: owners = %v", i, owners)
		}
		for _, o := range owners {
			data, ok, err := c.System(o).LookupValue(k, 2)
			if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
				t.Fatalf("key %d owner %d: %v %v %v", i, o, data, ok, err)
			}
		}
		data, ok, err := c.LookupValue(k, 2)
		if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
			t.Fatalf("key %d cluster lookup: %v %v %v", i, data, ok, err)
		}
	}
	if st := c.HAStats(); st.DegradedWrites != 0 || st.LostWrites != 0 {
		t.Errorf("healthy run recorded degradation: %+v", st)
	}
}

// TestHAClusterFailoverQuery: with one owner down, queries are served
// by the survivor; with all owners down they fail loudly.
func TestHAClusterFailoverQuery(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	k := KeyFromUint64(42)
	if err := rep.KeyWrite(k, keyData(42), 2); err != nil {
		t.Fatal(err)
	}
	for hop := 0; hop < 5; hop++ {
		if err := rep.Postcard(k, hop, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Increment(k, 7, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	owners := c.Owners(k)
	if err := c.SetDown(owners[0]); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.LookupValue(k, 2)
	if err != nil || !ok || !bytes.Equal(data, keyData(42)) {
		t.Fatalf("failover value lookup: %v %v %v", data, ok, err)
	}
	if path, ok, err := c.LookupPath(k, 1); err != nil || !ok || len(path) != 5 {
		t.Fatalf("failover path lookup: %v %v %v", path, ok, err)
	}
	if count, err := c.LookupCount(k, 2); err != nil || count != 7 {
		t.Fatalf("failover count lookup: %d %v", count, err)
	}
	st := c.HAStats()
	if st.DegradedQueries == 0 || st.FailoverQueries == 0 {
		t.Errorf("failover not accounted: %+v", st)
	}

	if err := c.SetDown(owners[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.LookupValue(k, 2); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("all-down lookup error = %v, want ErrAllReplicasDown", err)
	}
	if _, err := c.LookupCount(k, 2); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("all-down count error = %v, want ErrAllReplicasDown", err)
	}
	if st := c.HAStats(); st.FailedQueries == 0 {
		t.Errorf("failed query not accounted: %+v", st)
	}
}

// TestHAReporterBestEffortLoss: writes to an all-down owner set are
// shed with a counter, not errored — loss is a measured regime.
func TestHAReporterBestEffortLoss(t *testing.T) {
	c, err := NewHACluster(2, 1, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	k := KeyFromUint64(7)
	if err := c.SetDown(c.Owners(k)[0]); err != nil {
		t.Fatal(err)
	}
	if err := rep.KeyWrite(k, keyData(7), 2); err != nil {
		t.Fatalf("write to down owner errored: %v", err)
	}
	if st := c.HAStats(); st.LostWrites != 1 {
		t.Errorf("lost writes = %d, want 1", st.LostWrites)
	}
}

// TestHAClusterRejoinResync is the snapshot round-trip satellite: a
// collector misses writes while down, rejoins, and after Rebalance
// serves the missed slice — captured on its replica peers, restored
// into it — with LookupValue and LookupCount agreeing with the cluster.
func TestHAClusterRejoinResync(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 150
	write := func(from, to uint64) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
			if err := rep.Increment(KeyFromUint64(i), 1+i%5, 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0, keys/2)

	const victim = 1
	if err := c.SetDown(victim); err != nil {
		t.Fatal(err)
	}
	write(keys/2, keys) // victim misses its share of these
	if err := c.SetUp(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if st := c.HAStats(); st.Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", st.Resyncs)
	}

	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		mine := false
		for _, o := range c.Owners(k) {
			if o == victim {
				mine = true
			}
		}
		if !mine {
			continue
		}
		// The rejoined collector must answer for its owned slice
		// directly, matching the cluster's routed answer.
		direct, ok, err := c.System(victim).LookupValue(k, 2)
		if err != nil || !ok || !bytes.Equal(direct, keyData(i)) {
			t.Errorf("victim lookup key %d: %v %v %v", i, direct, ok, err)
			continue
		}
		routed, ok, err := c.LookupValue(k, 2)
		if err != nil || !ok || !bytes.Equal(routed, direct) {
			t.Errorf("routed lookup key %d disagrees: %v vs %v (%v %v)", i, routed, direct, ok, err)
		}
		// Count-min never undercounts; collisions (and the resync's
		// max-merge) may inflate, so assert the lower bound.
		want := 1 + i%5
		if got, err := c.System(victim).LookupCount(k, 2); err != nil || got < want {
			t.Errorf("victim count key %d = %d (%v), want >= %d", i, got, err, want)
		}
		if got, err := c.LookupCount(k, 2); err != nil || got < want {
			t.Errorf("routed count key %d = %d (%v), want >= %d", i, got, err, want)
		}
	}
}

// TestHAClusterStaleReadRepair: between rejoin and Rebalance, a stale
// replica never outvotes a fresh one — and the failover query that
// observes the divergence heals it on the spot (read-repair), so when
// the fresh owner dies next, the once-stale replica already serves the
// repaired value instead of its outdated one.
func TestHAClusterStaleReadRepair(t *testing.T) {
	c, err := NewHACluster(2, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	k := KeyFromUint64(3)
	if err := rep.KeyWrite(k, keyData(3), 2); err != nil {
		t.Fatal(err)
	}
	owners := c.Owners(k)
	// Rejoin owner[0] without rebalancing: it is stale but live.
	if err := c.SetDown(owners[0]); err != nil {
		t.Fatal(err)
	}
	if err := rep.KeyWrite(k, []byte{9, 9, 9, 9}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUp(owners[0]); err != nil {
		t.Fatal(err)
	}
	// Fresh owner has the new value; the stale one still has the old.
	// The query prefers the fresh answer AND writes it back to the
	// divergent stale replica.
	data, ok, err := c.LookupValue(k, 2)
	if err != nil || !ok || !bytes.Equal(data, []byte{9, 9, 9, 9}) {
		t.Fatalf("stale replica won over fresh: %v %v %v", data, ok, err)
	}
	if st := c.HAStats(); st.ReadRepairs == 0 {
		t.Errorf("divergent failover query recorded no read-repair: %+v", st)
	}
	// Direct slot read: the stale replica is converged now, no
	// Rebalance needed.
	direct, ok, err := c.System(owners[0]).LookupValue(k, 2)
	if err != nil || !ok || !bytes.Equal(direct, []byte{9, 9, 9, 9}) {
		t.Fatalf("stale replica not repaired: %v %v %v", direct, ok, err)
	}
	// So even with the fresh owner down, the repaired replica answers
	// with the up-to-date value.
	if err := c.SetDown(owners[1]); err != nil {
		t.Fatal(err)
	}
	data, ok, err = c.LookupValue(k, 2)
	if err != nil || !ok || !bytes.Equal(data, []byte{9, 9, 9, 9}) {
		t.Fatalf("post-repair last-resort lookup: %v %v %v", data, ok, err)
	}
}

// TestHAClusterAddCollector grows the cluster live: after Rebalance the
// newcomer serves the keys the ring moved to it.
func TestHAClusterAddCollector(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 200
	for i := uint64(0); i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	id, err := c.AddCollector()
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || c.Size() != 4 {
		t.Fatalf("AddCollector -> id %d size %d", id, c.Size())
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	gained := 0
	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		data, ok, err := c.LookupValue(k, 2)
		if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
			t.Fatalf("key %d after growth: %v %v %v", i, data, ok, err)
		}
		for _, o := range c.Owners(k) {
			if o != id {
				continue
			}
			gained++
			direct, ok, err := c.System(id).LookupValue(k, 2)
			if err != nil || !ok || !bytes.Equal(direct, keyData(i)) {
				t.Errorf("new collector cannot serve its key %d: %v %v %v", i, direct, ok, err)
			}
		}
	}
	// Rendezvous expectation: the newcomer enters a key's top-2 of 4
	// with probability ~1/2.
	if gained < keys/4 || gained > keys*3/4 {
		t.Errorf("new collector owns %d/%d keys, expected near %d", gained, keys, keys/2)
	}
}

// TestHAClusterDecommission shrinks the cluster: the leaver's keys are
// replayed into the survivors at the next Rebalance.
func TestHAClusterDecommission(t *testing.T) {
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 200
	for i := uint64(0); i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Decommission(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		for _, o := range c.Owners(k) {
			if o == 2 {
				t.Fatalf("key %d still owned by decommissioned collector", i)
			}
		}
		data, ok, err := c.LookupValue(k, 2)
		if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
			t.Fatalf("key %d after decommission: %v %v %v", i, data, ok, err)
		}
	}
}

// TestHAClusterDecommissionWhileDown: removing a collector that is
// already dead cannot capture its data — but the survivors cross-sync
// from each other at Rebalance, so every key regains its full R-way
// replica coverage from whichever live peer still holds it.
func TestHAClusterDecommissionWhileDown(t *testing.T) {
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 300
	for i := uint64(0); i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetDown(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Decommission(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		// Every surviving owner — including ones the key moved to —
		// must answer directly, or a second failure would lose data a
		// live replica held at rebalance time.
		for _, o := range c.Owners(k) {
			data, ok, err := c.System(o).LookupValue(k, 2)
			if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
				t.Fatalf("key %d owner %d after down-decommission: %v %v %v", i, o, data, ok, err)
			}
		}
	}
}

// TestHAEngineReplicatedFanout: the async path fans out like the sync
// path, and a collector killed mid-run costs no acknowledged data when
// R >= 2.
func TestHAEngineReplicatedFanout(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := c.Engine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Reporter(1)
	const keys = 300
	for i := uint64(0); i < keys; i++ {
		if i == keys/3 {
			if err := c.SetDown(1); err != nil {
				t.Fatal(err)
			}
		}
		if i == 2*keys/3 {
			if err := c.SetUp(1); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < keys; i++ {
		data, ok, err := c.LookupValue(KeyFromUint64(i), 2)
		if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
			t.Fatalf("key %d after mid-run failure: %v %v %v", i, data, ok, err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddCollector(); err != nil {
		t.Fatalf("AddCollector after engine close: %v", err)
	}
}

// TestHAEngineDrainDuringFailover hammers the engine from concurrent
// producers while a chaos goroutine injects failures and the main
// goroutine drains — the drain-during-failover -race satellite.
func TestHAEngineDrainDuringFailover(t *testing.T) {
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := c.Engine(EngineConfig{QueueDepth: 64, ChunkFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 4, 400
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rep := eng.Reporter(uint32(p + 1))
			for j := 0; j < perProducer; j++ {
				k := uint64(p*perProducer + j)
				if err := rep.KeyWrite(KeyFromUint64(k), keyData(k), 2); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				t.Errorf("producer %d flush: %v", p, err)
			}
		}(p)
	}
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for round := 0; round < 20; round++ {
			target := round % 4
			if err := c.SetDown(target); err != nil {
				t.Errorf("chaos SetDown: %v", err)
			}
			if err := c.SetUp(target); err != nil {
				t.Errorf("chaos SetUp: %v", err)
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := eng.Drain(); err != nil {
			t.Fatalf("drain during failover: %v", err)
		}
	}
	wg.Wait()
	<-chaosDone
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	found := 0
	total := producers * perProducer
	for k := uint64(0); k < uint64(total); k++ {
		data, ok, err := c.LookupValue(KeyFromUint64(k), 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok && bytes.Equal(data, keyData(k)) {
			found++
		}
	}
	// The chaos windows are instantaneous (down, immediately up), so a
	// write can miss at most one replica per toggle; after Rebalance
	// resyncs, effectively everything should be recoverable — leave
	// slack only for the store's own overwrite collisions.
	if found < total*99/100 {
		t.Errorf("recovered %d/%d keys after chaos + rebalance", found, total)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHAClusterAppendFailover: Append lists replicate too, and polling
// fails over to a surviving owner.
func TestHAClusterAppendFailover(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const list = uint32(2)
	for i := 0; i < 3; i++ {
		if err := rep.Append(list, []byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Poll performs no validity check (the ring wraps forever), so read
	// exactly the number of entries written.
	read := func() []byte {
		t.Helper()
		p, err := c.Poller(list)
		if err != nil {
			t.Fatal(err)
		}
		var out []byte
		for i := 0; i < 3; i++ {
			out = append(out, p.Poll()[0])
		}
		return out
	}
	if got := read(); !bytes.Equal(got, []byte{0, 1, 2}) {
		t.Fatalf("append entries = %v", got)
	}
	// Kill the primary owner; the other replica holds the same list.
	owners := c.OwnersOfList(list)
	if len(owners) != 2 {
		t.Fatalf("list owners = %v", owners)
	}
	if err := c.SetDown(owners[0]); err != nil {
		t.Fatal(err)
	}
	if got := read(); !bytes.Equal(got, []byte{0, 1, 2}) {
		t.Fatalf("append entries after failover = %v", got)
	}
	if err := c.SetDown(owners[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Poller(list); !errors.Is(err, ErrAllReplicasDown) {
		t.Fatalf("all-down poller error = %v, want ErrAllReplicasDown", err)
	}
}
