// Benchmarks mapping to the paper's tables and figures. Each benchmark
// exercises the real data path behind the corresponding result; dtabench
// combines the same paths with the hardware models to print paper-style
// numbers. See DESIGN.md §4 for the index and EXPERIMENTS.md for
// recorded outcomes.
package dta_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dta"
	"dta/internal/baseline"
	"dta/internal/baseline/btrdb"
	"dta/internal/baseline/cuckoo"
	"dta/internal/baseline/intcollector"
	"dta/internal/baseline/multilog"
	"dta/internal/telemetry/inttel"
	"dta/internal/telemetry/marple"
	"dta/internal/telemetry/netseer"
	"dta/internal/trace"
	"dta/internal/wire"
)

// --- Table 1: per-switch report generation ------------------------------

func BenchmarkTable1_INTPostcardGeneration(b *testing.B) {
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	paths, _ := inttel.NewPathModel(1<<14, 3, 5)
	sampler, _ := inttel.NewSampler(1, 200)
	src := &inttel.PostcardSource{Paths: paths, Sampler: sampler}
	var buf []wire.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := g.Next()
		buf = src.Reports(&p, buf[:0])
	}
}

func BenchmarkTable1_MarpleFlowletQuery(b *testing.B) {
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	q := marple.NewFlowletSizes(0, 8)
	var buf []wire.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := g.Next()
		buf = q.Process(&p, buf[:0])
	}
}

func BenchmarkTable1_NetSeerLossEvents(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.LossRate = 0.01
	g, _ := trace.NewGenerator(cfg)
	q := &netseer.LossEvents{ListID: 0}
	var buf []wire.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := g.Next()
		buf = q.Process(&p, buf[:0])
	}
}

// --- Fig. 2 / Fig. 7a: CPU baseline ingestion ----------------------------

func baselineReports(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		r := baseline.Report{
			SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 1, 0, 1},
			SrcPort: uint16(i), DstPort: 443, Proto: 6,
			SwitchID: uint32(i % 512), Value: uint32(i), TimestampNs: uint64(i) * 100,
		}
		buf := make([]byte, baseline.ReportSize)
		r.Encode(buf)
		out[i] = buf
	}
	return out
}

func benchCollector(b *testing.B, c baseline.Collector) {
	reports := baselineReports(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := reports[i%len(reports)]
		// Keep timestamps monotonic across recycled reports: collectors
		// with time-ordered structures otherwise degenerate unrealistically.
		buf[22] = byte(i >> 24)
		buf[23] = byte(i >> 16)
		buf[24] = byte(i >> 8)
		buf[25] = byte(i)
		if err := c.Ingest(buf); err != nil {
			b.Fatal(err)
		}
	}
	pr := c.Counters().PerReport()
	b.ReportMetric(pr.TotalCycles(), "modelcycles/report")
	b.ReportMetric(pr.TotalMemOps(), "meminstr/report")
}

func BenchmarkFig2a_MultiLogIngest(b *testing.B)     { benchCollector(b, multilog.New(1<<20)) }
func BenchmarkFig2a_CuckooIngest(b *testing.B)       { benchCollector(b, cuckoo.New(1<<18)) }
func BenchmarkFig7a_INTCollectorIngest(b *testing.B) { benchCollector(b, intcollector.New(1<<16, 0)) }
func BenchmarkFig7a_BTrDBIngest(b *testing.B)        { benchCollector(b, btrdb.New(1e6)) }

// --- Fig. 7a / Fig. 10 / Fig. 15: DTA end-to-end paths -------------------

func fullSystem(b *testing.B, batch int) *dta.System {
	b.Helper()
	vals := make([]uint32, 1024)
	for i := range vals {
		vals[i] = uint32(i + 1)
	}
	sys, err := dta.New(dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 20, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 18},
		Postcarding:  &dta.PostcardingOptions{Chunks: 1 << 16, Hops: 5, Values: vals},
		Append:       &dta.AppendOptions{Lists: 8, EntriesPerList: 1 << 16, EntrySize: 4, Batch: batch},
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchKeyWriteN(b *testing.B, n int) {
	sys := fullSystem(b, 16)
	rep := sys.Reporter(1)
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sys.Stats().MemInstrPerReport, "meminstr/report")
}

// Fig. 10: Key-Write collection vs redundancy (full frame + RDMA path).
func BenchmarkFig10_KeyWriteN1(b *testing.B) { benchKeyWriteN(b, 1) }
func BenchmarkFig10_KeyWriteN2(b *testing.B) { benchKeyWriteN(b, 2) }
func BenchmarkFig10_KeyWriteN4(b *testing.B) { benchKeyWriteN(b, 4) }

// Fig. 7a/Fig. 14: Postcarding end-to-end (5 postcards per flow).
func BenchmarkFig14_PostcardingPipeline(b *testing.B) {
	sys := fullSystem(b, 16)
	rep := sys.Reporter(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow := dta.KeyFromUint64(uint64(i / 5))
		if err := rep.Postcard(flow, i%5, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 15: Append vs batch size (full frame + RDMA path).
func benchAppendBatch(b *testing.B, batch int) {
	sys := fullSystem(b, batch)
	rep := sys.Reporter(1)
	e := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.Append(uint32(i&7), e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sys.Stats().MemInstrPerReport, "meminstr/report")
}

func BenchmarkFig15_AppendBatch1(b *testing.B)  { benchAppendBatch(b, 1) }
func BenchmarkFig15_AppendBatch4(b *testing.B)  { benchAppendBatch(b, 4) }
func BenchmarkFig15_AppendBatch16(b *testing.B) { benchAppendBatch(b, 16) }

// Key-Increment end-to-end (Table 2 workloads: TurboFlow, host counters).
func BenchmarkKeyIncrementN2(b *testing.B) {
	sys := fullSystem(b, 16)
	rep := sys.Reporter(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.Increment(dta.KeyFromUint64(uint64(i%4096)), 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 11: Key-Write query speed --------------------------------------

func BenchmarkFig11_KeyWriteQueryN2(b *testing.B) {
	sys := fullSystem(b, 16)
	rep := sys.Reporter(1)
	const loaded = 1 << 16
	for i := 0; i < loaded; i++ {
		rep.KeyWrite(dta.KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.LookupValue(dta.KeyFromUint64(uint64(i%loaded)), 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 11 parallel scaling: run with -cpu 1,2,4,8.
func BenchmarkFig11_KeyWriteQueryParallel(b *testing.B) {
	sys := fullSystem(b, 16)
	rep := sys.Reporter(1)
	const loaded = 1 << 16
	for i := 0; i < loaded; i++ {
		rep.KeyWrite(dta.KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 2)
	}
	host := sys.Host()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := host.QueryKeyWrite(dta.KeyFromUint64(uint64(i%loaded)), 2, 1); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// --- Fig. 16: Append polling ---------------------------------------------

func BenchmarkFig16_AppendPoll(b *testing.B) {
	sys := fullSystem(b, 16)
	p, err := sys.Poller(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink += p.Poll()[0]
	}
	_ = sink
}

// --- Fig. 12/13 machinery: redundancy and ageing -------------------------

func BenchmarkFig12_WriteQueryMix(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			sys := fullSystem(b, 16)
			rep := sys.Reporter(1)
			data := []byte{1, 2, 3, 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := dta.KeyFromUint64(uint64(i))
				if i%8 == 7 {
					sys.LookupValue(k, n)
				} else {
					rep.KeyWrite(k, data, n)
				}
			}
		})
	}
}

// --- Table 2 integrations: full monitoring systems over DTA --------------

func BenchmarkIntegration_INTPathTracing(b *testing.B) {
	paths, _ := inttel.NewPathModel(1024, 5, 5)
	vals := paths.ValueSpace()
	sys, err := dta.New(dta.Options{
		Postcarding: &dta.PostcardingOptions{Chunks: 1 << 16, Hops: 5, Values: vals},
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := sys.Reporter(1)
	g, _ := trace.NewGenerator(trace.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := g.Next()
		k := p.Flow.Key()
		hop := i % 5
		if err := rep.Postcard(k, hop, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine: sync vs async and shard scaling -----------------------------

func engineBenchCluster(b *testing.B, shards int) *dta.Cluster {
	b.Helper()
	cl, err := dta.NewCluster(shards, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

// BenchmarkEngine_Sync1Shard is the baseline every engine configuration
// is measured against: the synchronous single-collector call chain.
func BenchmarkEngine_Sync1Shard(b *testing.B) {
	cl := engineBenchCluster(b, 1)
	rep := cl.Reporter(1)
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineAsync drives an engine of the given shard count from four
// concurrent producer goroutines; ns/op across shard counts shows the
// shard-scaling curve, and against Sync1Shard the async win. Shard
// scaling is real parallelism, so it only shows on GOMAXPROCS ≥ 2: a
// single-core run measures pure queueing overhead. The frames flag
// selects the wire-level baseline (serialise + parse per report) versus
// the structured zero-allocation fast path — the Fig. 10-style
// comparison dtabench -json records in BENCH_results.json.
func benchEngineAsync(b *testing.B, shards int, frames bool) {
	benchEngineAsyncWAL(b, shards, frames, nil)
}

// benchEngineAsyncWAL is benchEngineAsync with an optional per-shard
// write-ahead log: wal != nil attaches one under a fresh temp directory
// with the given sync policy, measuring what durability costs the hot
// ingest path (dtabench -json records WAL-on vs WAL-off per policy).
func benchEngineAsyncWAL(b *testing.B, shards int, frames bool, wal *dta.WALPolicy) {
	cl := engineBenchCluster(b, shards)
	if wal != nil {
		for i := 0; i < shards; i++ {
			if err := cl.System(i).WithWAL(fmt.Sprintf("%s/wal-%d", b.TempDir(), i), *wal); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Shallow queues on purpose: with Block backpressure the producers
	// simply wait, and the in-flight chunk working set stays
	// cache-resident (deep queues — e.g. 8192 — put >100MB in flight and
	// turn every chunk touch into a DRAM miss, measuring memory latency
	// instead of the ingest path).
	eng, err := cl.Engine(dta.EngineConfig{QueueDepth: 256, Batch: 64})
	if err != nil {
		b.Fatal(err)
	}
	const producers = 4
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep := eng.Reporter(uint32(g + 1))
			if frames {
				rep = eng.FrameReporter(uint32(g + 1))
			}
			data := []byte{1, 2, 3, 4}
			for i := g; i < b.N; i += producers {
				if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
					b.Error(err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				b.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
	st := eng.Stats()
	if st.Processed != uint64(b.N) {
		b.Fatalf("processed %d of %d reports", st.Processed, b.N)
	}
}

// Structured fast path (the default Reporter).
func BenchmarkEngine_Async1Shard(b *testing.B) { benchEngineAsync(b, 1, false) }
func BenchmarkEngine_Async2Shard(b *testing.B) { benchEngineAsync(b, 2, false) }
func BenchmarkEngine_Async4Shard(b *testing.B) { benchEngineAsync(b, 4, false) }

// Wire-level frame baseline (FrameReporter) at the same shard counts.
func BenchmarkEngine_AsyncFrame1Shard(b *testing.B) { benchEngineAsync(b, 1, true) }
func BenchmarkEngine_AsyncFrame2Shard(b *testing.B) { benchEngineAsync(b, 2, true) }
func BenchmarkEngine_AsyncFrame4Shard(b *testing.B) { benchEngineAsync(b, 4, true) }

// Durability cost: the structured 4-shard path with a write-ahead log
// per collector, across the sync-policy spectrum. WALNone (OS-paced)
// must stay within a sliver of the WAL-off Async4Shard baseline.
func BenchmarkEngine_Async4Shard_WALNone(b *testing.B) {
	benchEngineAsyncWAL(b, 4, false, &dta.WALPolicy{Mode: dta.WALSyncNone})
}
func BenchmarkEngine_Async4Shard_WALInterval(b *testing.B) {
	benchEngineAsyncWAL(b, 4, false, &dta.WALPolicy{Mode: dta.WALSyncInterval, Interval: 10 * time.Millisecond})
}
func BenchmarkEngine_Async4Shard_WALBatch(b *testing.B) {
	benchEngineAsyncWAL(b, 4, false, &dta.WALPolicy{Mode: dta.WALSyncBatch})
}

func BenchmarkIntegration_MarpleTimeouts(b *testing.B) {
	sys, err := dta.New(dta.Options{
		KeyWrite: &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := sys.Reporter(1)
	cfg := trace.DefaultConfig()
	cfg.LossRate = 0.01
	cfg.TimeoutRate = 1
	g, _ := trace.NewGenerator(cfg)
	q := marple.NewTCPTimeouts(2)
	var buf []wire.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := g.Next()
		buf = q.Process(&p, buf[:0])
		for j := range buf {
			if err := rep.KeyWrite(buf[j].KeyWrite.Key, buf[j].Data, 2); err != nil {
				b.Fatal(err)
			}
		}
	}
}
