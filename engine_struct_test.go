package dta_test

import (
	"bytes"
	"runtime/debug"
	"testing"

	"dta"
)

// driveBoth runs the same workload through a structured Reporter on one
// cluster and a FrameReporter on an identical second cluster, returning
// both for comparison.
func driveBoth(t *testing.T, shards int, drive func(rep interface {
	KeyWrite(key dta.Key, data []byte, n int) error
	Increment(key dta.Key, delta uint64, n int) error
	Postcard(key dta.Key, hop, pathLen int) error
	Append(list uint32, data []byte) error
}) error) (structured, framed *dta.Cluster) {
	t.Helper()
	opts := dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 12, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 10},
		Postcarding:  &dta.PostcardingOptions{Chunks: 1 << 10, Hops: 3, Values: []uint32{1, 2, 3, 4, 5, 6, 7}},
		Append:       &dta.AppendOptions{Lists: 4, EntriesPerList: 1 << 10, EntrySize: 4, Batch: 4},
	}
	for _, mode := range []bool{false, true} {
		cl, err := dta.NewCluster(shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cl.Engine(dta.EngineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rep := eng.Reporter(5)
		if mode {
			rep = eng.FrameReporter(5)
		}
		if err := drive(rep); err != nil {
			t.Fatal(err)
		}
		if err := rep.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if mode {
			framed = cl
		} else {
			structured = cl
		}
	}
	return structured, framed
}

// TestStructuredMatchesFramePath drives an identical mixed-primitive
// workload through both ingest representations and requires
// byte-identical query results: the structured path must be a pure
// transport optimisation, invisible to stored state.
func TestStructuredMatchesFramePath(t *testing.T) {
	const n = 500
	structured, framed := driveBoth(t, 3, func(rep interface {
		KeyWrite(key dta.Key, data []byte, n int) error
		Increment(key dta.Key, delta uint64, n int) error
		Postcard(key dta.Key, hop, pathLen int) error
		Append(list uint32, data []byte) error
	}) error {
		for i := 0; i < n; i++ {
			k := dta.KeyFromUint64(uint64(i))
			if err := rep.KeyWrite(k, []byte{byte(i), 1, 2, 3}, 2); err != nil {
				return err
			}
			if err := rep.Increment(k, uint64(i%7+1), 2); err != nil {
				return err
			}
			for hop := 0; hop < 3; hop++ {
				if err := rep.Postcard(dta.KeyFromUint64(uint64(i%50)), hop, 3); err != nil {
					return err
				}
			}
			if err := rep.Append(uint32(i%4), []byte{byte(i), 0xaa, 0xbb, 0xcc}); err != nil {
				return err
			}
		}
		return nil
	})

	for i := 0; i < n; i++ {
		k := dta.KeyFromUint64(uint64(i))
		sv, sok, err := structured.LookupValue(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		fv, fok, err := framed.LookupValue(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sok != fok || !bytes.Equal(sv, fv) {
			t.Fatalf("key %d: structured (%v,%v) != framed (%v,%v)", i, sv, sok, fv, fok)
		}
		sc, _ := structured.LookupCount(k, 2)
		fc, _ := framed.LookupCount(k, 2)
		if sc != fc {
			t.Fatalf("key %d: count %d != %d", i, sc, fc)
		}
	}
	for i := 0; i < 50; i++ {
		k := dta.KeyFromUint64(uint64(i))
		sp, sok, _ := structured.LookupPath(k, 1)
		fp, fok, _ := framed.LookupPath(k, 1)
		if sok != fok {
			t.Fatalf("flow %d: path found %v != %v", i, sok, fok)
		}
		if sok {
			for h := range sp {
				if sp[h] != fp[h] {
					t.Fatalf("flow %d hop %d: %d != %d", i, h, sp[h], fp[h])
				}
			}
		}
	}
	ss, fs := structured.Stats(), framed.Stats()
	if ss.Reports != fs.Reports || ss.RDMAWrites != fs.RDMAWrites || ss.RDMAAtomics != fs.RDMAAtomics {
		t.Fatalf("stats diverge: structured %+v, framed %+v", ss, fs)
	}
}

// TestStructuredValidationMatchesWire: invalid reports must be rejected
// at submission, exactly like the wire decoder would reject them.
func TestStructuredValidationMatchesWire(t *testing.T) {
	cl, err := dta.NewCluster(1, dta.Options{KeyWrite: &dta.KeyWriteOptions{Slots: 64, DataSize: 4}, Append: &dta.AppendOptions{Lists: 1, EntriesPerList: 16, EntrySize: 4}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cl.Engine(dta.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep := eng.Reporter(1)
	if err := rep.KeyWrite(dta.KeyFromUint64(1), []byte{1}, 0); err == nil {
		t.Error("redundancy-0 Key-Write accepted")
	}
	if err := rep.KeyWrite(dta.KeyFromUint64(1), make([]byte, 65), 1); err == nil {
		t.Error("oversized Key-Write payload accepted")
	}
	if err := rep.Append(0, nil); err == nil {
		t.Error("empty Append accepted")
	}
	if err := rep.Postcard(dta.KeyFromUint64(1), 3, 3); err == nil {
		t.Error("postcard hop outside path accepted")
	}
	if st := eng.Stats(); st.Enqueued != 0 {
		t.Errorf("invalid reports reached a queue: %+v", st)
	}
}

// TestEngineStructuredEndToEndZeroAllocs pins the whole structured
// ingest chain — AsyncReporter staging, shard queue, translator RDMA
// crafting, device execution — at zero allocations per Key-Write once
// buffers and pools are warm.
func TestEngineStructuredEndToEndZeroAllocs(t *testing.T) {
	cl, err := dta.NewCluster(1, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 16, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cl.Engine(dta.EngineConfig{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep := eng.Reporter(1)
	data := []byte{1, 2, 3, 4}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 20_000; i++ { // warm pools, buffers and queues
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Increment(dta.KeyFromUint64(uint64(i)), 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(5000, func() {
		if err := rep.KeyWrite(dta.KeyFromUint64(i), data, 2); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("structured end-to-end Key-Write allocated %.2f/op, want 0", allocs)
	}
}
