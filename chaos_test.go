package dta

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dta/internal/loadgen"
	"dta/internal/obs/journal"
)

// chaosOptions is haOptions plus an Append store sized for the mixed
// loadgen profile the property test drives.
func chaosOptions() Options {
	o := haOptions()
	o.Append = &AppendOptions{Lists: 8, EntriesPerList: 1 << 12, EntrySize: 4, Batch: 16}
	return o
}

// journalCounts tallies the cluster journal by event type.
func journalCounts(c *HACluster) map[journal.Type]int {
	out := map[journal.Type]int{}
	if j := c.Journal(); j != nil {
		events, _, _ := j.Since(0, nil)
		for i := range events {
			out[events[i].Type]++
		}
	}
	return out
}

// TestChaosRequiresPlane: every fault API (except clock skew, which
// lives on the System) demands EnableChaos first, and EnableChaos must
// run before WithWAL so segment files open fault-wrapped.
func TestChaosRequiresPlane(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PartitionReporter(1); err == nil {
		t.Error("PartitionReporter without a plane accepted")
	}
	if err := c.PartitionPeers(0, 1); err == nil {
		t.Error("PartitionPeers without a plane accepted")
	}
	if err := c.SlowDisk(1, time.Millisecond); err == nil {
		t.Error("SlowDisk without a plane accepted")
	}
	if err := c.SetClockSkew(1, time.Second); err != nil {
		t.Errorf("SetClockSkew needs no plane: %v", err)
	}
	if err := c.HealChaos(-1); err != nil {
		t.Errorf("HealChaos without a plane is a safe no-op: %v", err)
	}

	if _, err := c.EnableChaos(1); err != nil {
		t.Fatal(err)
	}
	if p, err := c.EnableChaos(2); err != nil || p != c.Chaos() || p.Seed() != 1 {
		t.Errorf("EnableChaos not idempotent: %v %v", p, err)
	}

	d, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WithWAL(t.TempDir(), WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EnableChaos(1); err == nil {
		t.Error("EnableChaos after WithWAL accepted (segments already open unwrapped)")
	}
}

// TestChaosReporterPartitionExactness: a reporter→collector cut drops
// the target out of fan-out (writes degrade, nothing is lost with R=2),
// queries keep failing over to it being skipped as stale, and after
// heal + rebalance the cut collector has converged — it answers
// directly for the keys written while it was dark.
func TestChaosReporterPartitionExactness(t *testing.T) {
	dir := t.TempDir()
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnableChaos(11); err != nil {
		t.Fatal(err)
	}
	if err := c.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 400
	write := func(from, to uint64) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
		}
	}

	write(0, keys/2)
	if err := c.PartitionReporter(1); err != nil {
		t.Fatal(err)
	}
	if !c.ChaosActive() {
		t.Fatal("ChaosActive false with a reporter cut in place")
	}
	write(keys/2, keys)

	// The cut cost degraded writes for collector 1's share, no losses.
	st := c.HAStats()
	if st.DegradedWrites == 0 {
		t.Fatalf("partition caused no degraded writes: %+v", st)
	}
	if st.LostWrites != 0 {
		t.Fatalf("partition lost writes despite R=2: %+v", st)
	}
	// Every key still answers through the surviving replicas.
	for i := uint64(0); i < keys; i++ {
		data, ok, err := c.LookupValue(KeyFromUint64(i), 2)
		if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
			t.Fatalf("key %d during partition: %v %v %v", i, data, ok, err)
		}
	}

	if err := c.HealReporter(1); err != nil {
		t.Fatal(err)
	}
	if c.ChaosActive() {
		t.Fatal("ChaosActive true after heal")
	}
	if err := c.RebalanceUntilHealed(0); err != nil {
		t.Fatal(err)
	}

	// Convergence: collector 1 answers directly for its share of the
	// keys written while it was cut (a sliver of slot-collision loss is
	// the store's normal hazard, not partition damage).
	var owned, hit int
	for i := uint64(keys / 2); i < keys; i++ {
		k := KeyFromUint64(i)
		for _, o := range c.Owners(k) {
			if o != 1 {
				continue
			}
			owned++
			if data, ok, err := c.System(1).LookupValue(k, 2); err == nil && ok && bytes.Equal(data, keyData(i)) {
				hit++
			}
		}
	}
	if owned == 0 {
		t.Fatal("collector 1 owns none of the dark-period keys")
	}
	if hit*100 < owned*99 {
		t.Fatalf("resynced collector answers %d/%d dark-period keys", hit, owned)
	}

	ev := journalCounts(c)
	if ev[journal.EvPartition] == 0 || ev[journal.EvPartitionHeal] == 0 {
		t.Fatalf("partition arc not journaled: %v", ev)
	}
}

// TestChaosPeerPartitionRetry: a peer cut blocks the whole target
// resync (a partial replay would clear the stale mark while missing the
// cut peer's history), the deferral is observable as a retry with
// backoff, and after the link heals RebalanceUntilHealed converges.
func TestChaosPeerPartitionRetry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnableChaos(5); err != nil {
		t.Fatal(err)
	}
	if err := c.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 200
	for i := uint64(0); i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	makeStale(t, c, 1) // collector 1 needs a resync
	if err := c.PartitionPeers(1, 0); err != nil {
		t.Fatal(err)
	}

	err = c.Rebalance()
	if err == nil {
		t.Fatal("rebalance succeeded with the resync path partitioned")
	}
	if !strings.Contains(err.Error(), "deferred") {
		t.Fatalf("rebalance error does not mention deferral: %v", err)
	}
	st := c.HAStats()
	if st.ResyncRetries == 0 {
		t.Fatalf("deferral not counted as a retry: %+v", st)
	}
	if ev := journalCounts(c); ev[journal.EvResyncRetry] == 0 {
		t.Fatalf("deferral not journaled: %v", ev)
	}

	// Still blocked: retries keep accruing, with capped backoff.
	if err := c.Rebalance(); err == nil {
		t.Fatal("second rebalance succeeded while still partitioned")
	}
	if got := c.HAStats().ResyncRetries; got < 2 {
		t.Fatalf("retries = %d after two blocked rebalances", got)
	}

	if err := c.HealPeers(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.RebalanceUntilHealed(4); err != nil {
		t.Fatalf("rebalance after heal: %v", err)
	}
	// Converged: the ex-stale collector answers directly.
	var hit int
	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		for _, o := range c.Owners(k) {
			if o != 1 {
				continue
			}
			if data, ok, err := c.System(1).LookupValue(k, 2); err == nil && ok && bytes.Equal(data, keyData(i)) {
				hit++
			}
		}
	}
	if hit == 0 {
		t.Fatal("resynced collector answers nothing")
	}
}

// TestChaosSlowDiskDegradesWAL: the chaos plane's disk faults reach the
// WAL through HACluster.WithWAL's per-collector WrapFile threading —
// injected fsync latency trips degraded-ack mode on exactly the slow
// collector, and healing the disk lets a probe exit it.
func TestChaosSlowDiskDegradesWAL(t *testing.T) {
	dir := t.TempDir()
	c, err := NewHACluster(2, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnableChaos(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WithWAL(dir, WALPolicy{DegradeFsync: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := c.SlowDisk(1, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	syncAll := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := rep.KeyWrite(KeyFromUint64(uint64(i)), keyData(uint64(i)), 2); err != nil {
				t.Fatal(err)
			}
			if err := c.SyncWAL(); err != nil {
				t.Fatal(err)
			}
		}
	}
	syncAll(4) // > degradeEnterAfter over-bound fsyncs on the slow disk

	st1, ok := c.System(1).WALStats()
	if !ok || !st1.Degraded {
		t.Fatalf("slow collector not degraded: %+v (ok=%v)", st1, ok)
	}
	if st0, _ := c.System(0).WALStats(); st0.Degraded {
		t.Fatalf("healthy collector degraded: %+v", st0)
	}

	if err := c.SlowDisk(1, 0); err != nil { // heal
		t.Fatal(err)
	}
	syncAll(12) // enough Syncs for a probe to fire and exit
	if st1, _ := c.System(1).WALStats(); st1.Degraded {
		t.Fatalf("healed disk still degraded: %+v", st1)
	}
	if st1, _ := c.System(1).WALStats(); st1.DegradedAcks == 0 {
		t.Fatal("no degraded acks counted across the cycle")
	}
	ev := journalCounts(c)
	if ev[journal.EvWALDegradeEnter] == 0 || ev[journal.EvWALDegradeExit] == 0 {
		t.Fatalf("degrade cycle not journaled: %v", ev)
	}
	if ev[journal.EvSlowDisk] < 2 { // inject + heal
		t.Fatalf("slow-disk fault not journaled: %v", ev)
	}
}

// TestChaosClockSkew: skewing a collector's clock — including a
// backwards jump — must not corrupt ingest or the WAL. All writes stay
// queryable and the skew resets on heal.
func TestChaosClockSkew(t *testing.T) {
	dir := t.TempDir()
	c, err := NewHACluster(2, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnableChaos(9); err != nil {
		t.Fatal(err)
	}
	if err := c.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 300
	write := func(from, to uint64) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0, 100)
	if err := c.SetClockSkew(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	write(100, 200)
	// Backwards: collector 1's clock rewinds below where it has already
	// stamped WAL records (the signed-delta encoding's worst case).
	if err := c.SetClockSkew(1, -time.Second); err != nil {
		t.Fatal(err)
	}
	write(200, keys)
	if got := c.System(1).ClockSkew(); got != int64(-time.Second) {
		t.Fatalf("ClockSkew = %d, want %d", got, int64(-time.Second))
	}
	if err := c.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < keys; i++ {
		data, ok, err := c.LookupValue(KeyFromUint64(i), 2)
		if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
			t.Fatalf("key %d under skew: %v %v %v", i, data, ok, err)
		}
	}
	if err := c.HealChaos(1); err != nil {
		t.Fatal(err)
	}
	if got := c.System(1).ClockSkew(); got != 0 {
		t.Fatalf("heal left skew %d", got)
	}
	if ev := journalCounts(c); ev[journal.EvClockSkew] < 3 { // +2s, -1s, heal
		t.Fatalf("skew arc not journaled: %v", ev)
	}
}

// TestAutoRebalanceOnHeal: with auto-rebalance opted in, a chaos heal
// arms the cluster and the next AutoRebalance call (the driver's safe
// barrier) resyncs; a second call reports nothing to do.
func TestAutoRebalanceOnHeal(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnableChaos(2); err != nil {
		t.Fatal(err)
	}
	c.SetAutoRebalance(true)

	if ran, err := c.AutoRebalance(0); ran || err != nil {
		t.Fatalf("unarmed AutoRebalance ran: %v %v", ran, err)
	}

	rep := c.Reporter(1)
	if err := c.PartitionReporter(1); err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for i := uint64(0); i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.HealReporter(1); err != nil {
		t.Fatal(err)
	}
	ran, err := c.AutoRebalance(0)
	if err != nil {
		t.Fatalf("auto-rebalance: %v", err)
	}
	if !ran {
		t.Fatal("heal did not arm auto-rebalance")
	}
	if st := c.HAStats(); st.Resyncs == 0 {
		t.Fatalf("auto-rebalance resynced nothing: %+v", st)
	}
	if ran, _ := c.AutoRebalance(0); ran {
		t.Fatal("disarmed AutoRebalance ran again")
	}
}

// TestChaosRandomProperty is the randomized chaos soak: seeded random
// fault schedules (partitions, flapping links, slow disks, skew)
// against the engine with R=2 and a WAL, asserting the exactness
// contract after heal + rebalance — every acknowledged Append is
// recovered on every owner, every readable key is byte-exact, and the
// cluster converges (a follow-up rebalance is a no-op). Runs under
// -race in CI.
func TestChaosRandomProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosProperty(t, seed)
		})
	}
}

func runChaosProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	const shards = 4
	hac, err := NewHACluster(shards, 2, chaosOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hac.EnableChaos(seed); err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(dir, WALPolicy{Mode: WALSyncBatch, DegradeFsync: 500 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	eng, err := hac.Engine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// A random schedule of 2–4 faults, some healed mid-run, the rest
	// left for the post-run heal.
	var sched []loadgen.Event
	victim := rng.Intn(shards)
	sched = append(sched, loadgen.Event{After: 0.2, Action: loadgen.Partition, Collector: victim})
	if rng.Intn(2) == 0 {
		sched = append(sched, loadgen.Event{After: 0.5, Action: loadgen.Heal, Collector: victim})
	}
	if rng.Intn(2) == 0 {
		a := rng.Intn(shards)
		b := (a + 1 + rng.Intn(shards-1)) % shards
		sched = append(sched, loadgen.Event{After: 0.3, Action: loadgen.PartitionPeer, Collector: a, Peer: b})
	}
	if rng.Intn(2) == 0 {
		sched = append(sched, loadgen.Event{After: 0.25, Action: loadgen.SlowDisk, Collector: rng.Intn(shards), FsyncLat: 2 * time.Millisecond})
	}
	if rng.Intn(2) == 0 {
		d := time.Duration(rng.Intn(5)-2) * time.Second
		sched = append(sched, loadgen.Event{After: 0.4, Action: loadgen.Skew, Collector: rng.Intn(shards), Skew: d})
	}
	t.Logf("schedule: %s", loadgen.FormatSchedule(sched))

	lcfg := loadgen.Config{
		Profile:   loadgen.Profile{Kind: loadgen.Mixed, Keys: 1 << 12},
		Reporters: 4,
		Reports:   2000,
		Seed:      seed,
		Schedule:  sched,
		Drain:     eng.Drain,
		Control: func(ev loadgen.Event) error {
			switch ev.Action {
			case loadgen.Partition:
				return hac.PartitionReporter(ev.Collector)
			case loadgen.PartitionPeer:
				return hac.PartitionPeers(ev.Collector, ev.Peer)
			case loadgen.SlowDisk:
				return hac.SlowDisk(ev.Collector, ev.FsyncLat)
			case loadgen.Skew:
				return hac.SetClockSkew(ev.Collector, ev.Skew)
			case loadgen.Heal:
				return hac.HealChaos(ev.Collector)
			}
			return errors.New("unexpected action")
		},
	}
	if _, err := loadgen.Run(lcfg, func(i int) loadgen.Reporter {
		return eng.Reporter(uint32(i + 1))
	}); err != nil {
		t.Fatal(err)
	}

	// Heal everything and converge, retrying through any deferrals the
	// still-cut peers caused on the first pass.
	if hac.ChaosActive() {
		_ = hac.Rebalance() // expected to defer blocked targets
	}
	if err := hac.HealChaos(-1); err != nil {
		t.Fatal(err)
	}
	if err := hac.RebalanceUntilHealed(0); err != nil {
		t.Fatalf("rebalance never converged: %v", err)
	}
	// Converged means converged: nothing left stale for another pass.
	if err := hac.Rebalance(); err != nil {
		t.Fatalf("post-convergence rebalance not clean: %v", err)
	}

	// Acknowledged-append exactness: every owner of every list holds
	// every expected entry.
	expected := loadgen.AppendedKeys(lcfg)
	if len(expected) == 0 {
		t.Fatal("mixed profile generated no appends")
	}
	for list, keys := range expected {
		want := make(map[[4]byte]int, len(keys))
		for _, k := range keys {
			want[loadgen.KeyWriteValue(k)]++
		}
		for _, o := range hac.OwnersOfList(list) {
			sys := hac.System(o)
			store := sys.Host().AppendStore()
			written := sys.Translator().AppendBatcher().Written(int(list))
			if written > uint64(store.Config().EntriesPerList) {
				t.Fatalf("list %d owner %d wrapped its ring", list, o)
			}
			remaining := make(map[[4]byte]int, len(want))
			for v, n := range want {
				remaining[v] = n
			}
			got := 0
			for i := uint64(0); i < written; i++ {
				var e [4]byte
				copy(e[:], store.Entry(int(list), int(i)))
				if remaining[e] > 0 {
					remaining[e]--
					got++
				}
			}
			if got != len(keys) {
				t.Errorf("list %d owner %d recovered %d/%d append entries", list, o, got, len(keys))
			}
		}
	}

	// Key-write convergence: every readable key is byte-exact, nothing
	// is unreachable, and coverage stays at the store's fault-free
	// collision floor.
	keys := loadgen.WrittenKeys(lcfg)
	var found int
	for _, k := range keys {
		data, ok, err := hac.LookupValue(KeyFromUint64(k), 2)
		if err != nil {
			t.Fatalf("key %d unreachable after heal: %v", k, err)
		}
		if !ok {
			continue
		}
		want := loadgen.KeyWriteValue(k)
		if !bytes.Equal(data, want[:]) {
			t.Fatalf("key %d read back %v, want %v", k, data, want[:])
		}
		found++
	}
	if found*1000 < len(keys)*995 {
		t.Fatalf("found %d/%d keys after heal", found, len(keys))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
