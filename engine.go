package dta

import (
	"fmt"

	"dta/internal/engine"
	"dta/internal/ha"
	"dta/internal/obs/trace"
	"dta/internal/reporter"
	"dta/internal/wire"
)

// EngineConfig tunes the asynchronous ingest engine. See
// internal/engine for field semantics.
type EngineConfig = engine.Config

// EngineStats snapshots engine counters.
type EngineStats = engine.Stats

// EnginePolicy selects the backpressure behaviour of a full shard queue.
type EnginePolicy = engine.Policy

const (
	// EngineBlock makes submissions wait for queue space (lossless).
	EngineBlock = engine.Block
	// EngineDrop sheds reports with a counter, mirroring the
	// translator rate limiter's semantics.
	EngineDrop = engine.Drop
)

// ErrEngineClosed is returned by submissions after Engine.Close.
var ErrEngineClosed = engine.ErrClosed

// Engine is an asynchronous, sharded ingest pipeline: each collector's
// translator+host sits behind a dedicated worker goroutine with a
// bounded report queue, so reporters on any number of goroutines submit
// concurrently while collectors ingest in parallel.
//
// While an Engine is attached, all reports must flow through its
// AsyncReporters: driving the owning System's synchronous reporters (or
// calling System.Flush) concurrently would race with the shard workers.
// Query and Stats methods are safe again once Drain or Close returns.
type Engine struct {
	inner   *engine.Engine
	cluster *Cluster   // nil unless attached to a Cluster
	hac     *HACluster // nil unless attached to an HACluster (replicated fan-out)
	systems []*System  // one per shard
}

// systemSink adapts one System's lossy-link + translator + collector
// chain to the engine's per-shard Sink. It implements both ingest
// representations: serialised frames (wire-level path) and decoded
// reports (structured zero-allocation fast path).
type systemSink struct{ s *System }

func (k systemSink) ProcessFrame(frame []byte, nowNs uint64) error {
	return k.s.deliverAt(frame, nowNs)
}

func (k systemSink) ProcessReport(r *wire.Report, nowNs uint64) error {
	return k.s.deliverReportAt(r, nowNs)
}

func (k systemSink) ProcessStaged(s *wire.StagedReport, nowNs uint64) error {
	return k.s.deliverStagedAt(s, nowNs)
}

// SetTraceHandle installs the data-plane trace handle for the next
// processed report on the System's translator (engine.TraceSink); the
// shard worker calls it per record when tracing is live.
func (k systemSink) SetTraceHandle(h trace.Handle) { k.s.tr.SetTraceHandle(h) }

func (k systemSink) Flush(nowNs uint64) error { return k.s.flushAt(nowNs) }

// BatchEnd marks a worker dequeue-batch boundary: with a WAL attached
// under the every-batch sync policy this is where the batch's records
// become durable.
func (k systemSink) BatchEnd(nowNs uint64) error { return k.s.walCommitBatch() }

// Engine attaches a single-shard async ingest engine to this System.
func (s *System) Engine(cfg EngineConfig) (*Engine, error) {
	return newEngine([]*System{s}, nil, nil, cfg)
}

// Engine attaches an async ingest engine with one shard per collector.
func (c *Cluster) Engine(cfg EngineConfig) (*Engine, error) {
	return newEngine(c.systems, c, nil, cfg)
}

func newEngine(systems []*System, cluster *Cluster, hac *HACluster, cfg EngineConfig) (*Engine, error) {
	sinks := make([]engine.Sink, len(systems))
	for i, s := range systems {
		sinks[i] = systemSink{s}
	}
	if cfg.Obs == nil && len(systems) > 0 {
		// Engine metrics land in the owning deployment's registry at the
		// root scope: shard i is collector i (cluster engines) or the
		// only collector, so the shard="i" label the engine adds already
		// identifies the member — no collector label needed.
		cfg.Obs = systems[0].obsReg.Scope()
	}
	if cfg.Journal == nil && len(systems) > 0 {
		// Same default for the flight recorder: shards emit queue-stall
		// episodes into the owning deployment's journal (shared across
		// cluster members, so systems[0]'s is the cluster's).
		cfg.Journal = systems[0].jr
	}
	if cfg.Trace == nil && len(systems) > 0 {
		// Same default for the trace pipeline: submissions begin traces
		// against the owning deployment's tracer (shared across cluster
		// members, so systems[0]'s is the cluster's).
		cfg.Trace = systems[0].trc
	}
	inner, err := engine.New(sinks, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner, cluster: cluster, hac: hac, systems: systems}, nil
}

// Shards returns the number of shard workers.
func (e *Engine) Shards() int { return e.inner.Shards() }

// Drain blocks until every report queued before the call has been
// ingested and every shard's translator state has been flushed; the
// engine keeps accepting reports afterwards. Reports still staged in an
// AsyncReporter are not covered — Flush each reporter first. Queries
// observe all drained reports.
func (e *Engine) Drain() error {
	var now uint64
	for _, s := range e.systems {
		if n := s.Now(); n > now {
			now = n
		}
	}
	return e.inner.Drain(now)
}

// Close drains queued reports, flushes every shard and stops the
// workers; subsequent submissions fail with ErrEngineClosed.
func (e *Engine) Close() error { return e.inner.Close() }

// Closed reports whether Close has been called (an HACluster allows
// membership changes only once its attached engine is closed).
func (e *Engine) Closed() bool { return e.inner.Closed() }

// Err returns the first ingest error observed by any shard worker.
func (e *Engine) Err() error { return e.inner.Err() }

// Stats sums engine counters across shards.
func (e *Engine) Stats() EngineStats { return e.inner.Stats() }

// ShardStats snapshots per-shard engine counters.
func (e *Engine) ShardStats() []EngineStats {
	out := make([]EngineStats, e.inner.Shards())
	for i := range out {
		out[i] = e.inner.ShardStats(i)
	}
	return out
}

// Reporter attaches an async reporter switch using the structured fast
// path: reports are staged by value (fixed-size struct + inline payload)
// in per-shard chunks, never serialised to a wire frame and never
// re-parsed — the zero-allocation ingest path. The handle owns staged
// chunks, so it is NOT goroutine-safe: give each producer goroutine its
// own AsyncReporter (they are cheap). Call Flush before Drain so staged
// reports reach the shard queues.
func (e *Engine) Reporter(switchID uint32) *AsyncReporter {
	sub := e.inner.Submitter()
	if e.hac != nil {
		// HA fan-outs stage one report on several owner shards; the
		// resync watermark fence needs those copies to reach the shard
		// queues together (see HACluster.fenceMu).
		sub.SetCoupled(true)
	}
	return &AsyncReporter{
		eng:      e,
		sub:      sub,
		switchID: switchID,
	}
}

// FrameReporter attaches an async reporter that serialises every report
// into a full Ethernet/IPv4/UDP/DTA frame which the shard worker parses
// back — the wire-level path. It exists for wire-format coverage and as
// the baseline the structured path is benchmarked against; semantics
// (routing, loss, stored bytes) are identical to Reporter's.
func (e *Engine) FrameReporter(switchID uint32) *AsyncReporter {
	r := &AsyncReporter{
		eng:      e,
		sub:      e.inner.Submitter(),
		switchID: switchID,
		frames:   true,
		buf:      make([]byte, wire.MaxReportLen),
	}
	if e.hac != nil {
		r.sub.SetCoupled(true) // see Reporter
	}
	for range e.systems {
		r.reps = append(r.reps, reporter.New(reporterConfig(switchID)))
	}
	return r
}

// AsyncReporter is a reporter handle that stages reports on the calling
// goroutine (reporter-side work is parallel across switches, as in the
// real system) into per-shard chunks that are queued on the owning
// shard every EngineConfig.ChunkFrames reports. Reporter handles use
// the structured fast path; FrameReporter handles serialise real
// frames.
type AsyncReporter struct {
	eng      *Engine
	sub      *engine.Submitter
	switchID uint32

	// scratch is the structured-path staging report, reused across calls
	// so only the active sub-header is written per report (SubmitReport
	// copies it out before returning; stale sibling sub-headers are never
	// read).
	scratch wire.Report

	// Frame-mode state (FrameReporter only).
	frames bool
	reps   []*reporter.Reporter // per-shard encoder, so each system sees its own IP-ID stream
	buf    []byte
}

// shardFor routes a key the same way ClusterReporter does, so sync and
// async ingestion agree on ownership.
func (r *AsyncReporter) shardFor(key Key) int {
	if r.eng.cluster != nil {
		return r.eng.cluster.Owner(key)
	}
	return 0
}

func (r *AsyncReporter) submit(shard int, ln int, err error) error {
	if err != nil {
		return err
	}
	return r.sub.Submit(shard, r.buf[:ln], r.eng.systems[shard].Now())
}

// submitReport validates and stages one structured report on shard.
func (r *AsyncReporter) submitReport(shard int, rep *wire.Report) error {
	if err := rep.Validate(); err != nil {
		return err
	}
	return r.sub.SubmitReport(shard, rep, r.eng.systems[shard].Now())
}

// haFan encodes and submits one frame-mode report to every live replica
// owner (HACluster engines only): the same fan-out HAReporter performs
// synchronously, staged through the owners' shard queues. Down owners
// are skipped with a counter, never an error.
func (r *AsyncReporter) haFan(owners []int, encode func(rep *reporter.Reporter, buf []byte) (int, error)) error {
	h := r.eng.hac
	// Fence read-lock across the whole fan-out, including any coupled
	// chunk flush a submit triggers — see HACluster.fenceMu.
	h.fenceMu.RLock()
	defer h.fenceMu.RUnlock()
	// Skip set decided before the first submit — see HAReporter.fan for
	// why this ordering is load-bearing for the incremental-resync
	// epoch fence. unreachable covers both down flags and chaos-plane
	// reporter-link cuts.
	var skip [ha.MaxReplicas]bool
	for i, o := range owners {
		skip[i] = h.unreachable(o)
	}
	live := 0
	for i, o := range owners {
		if skip[i] {
			continue
		}
		ln, err := encode(r.reps[o], r.buf)
		if err != nil {
			return err
		}
		if err := r.sub.Submit(o, r.buf[:ln], r.eng.systems[o].Now()); err != nil {
			return err
		}
		live++
	}
	h.health.RecordWrite(live, len(owners))
	return nil
}

// haFanReport is haFan for the structured path: the report is built
// once and staged by value on every live owner — no per-replica
// re-encoding at all.
func (r *AsyncReporter) haFanReport(owners []int, rep *wire.Report) error {
	if err := rep.Validate(); err != nil {
		return err
	}
	h := r.eng.hac
	// Fence read-lock across the whole fan-out — see HACluster.fenceMu.
	h.fenceMu.RLock()
	defer h.fenceMu.RUnlock()
	// Skip set decided before the first submit — see HAReporter.fan.
	var skip [ha.MaxReplicas]bool
	for i, o := range owners {
		skip[i] = h.unreachable(o)
	}
	live := 0
	for i, o := range owners {
		if skip[i] {
			continue
		}
		if err := r.sub.SubmitReport(o, rep, r.eng.systems[o].Now()); err != nil {
			return err
		}
		live++
	}
	h.health.RecordWrite(live, len(owners))
	return nil
}

// Flush queues this reporter's staged chunks. Producers must call it
// (on their own goroutine) before the engine's Drain or Close covers
// their reports.
func (r *AsyncReporter) Flush() error {
	if h := r.eng.hac; h != nil {
		// A flush pushes all shards' chunks as one atomic event with
		// respect to the resync watermark fence — see HACluster.fenceMu.
		h.fenceMu.RLock()
		defer h.fenceMu.RUnlock()
	}
	return r.sub.Flush()
}

// KeyWrite stores data under key with redundancy n via the owning
// shard (all R owning shards on an HACluster engine).
func (r *AsyncReporter) KeyWrite(key Key, data []byte, n int) error {
	if r.frames {
		if h := r.eng.hac; h != nil {
			var ob [ha.MaxReplicas]int
			return r.haFan(h.owners(key[:], ob[:0]), func(rep *reporter.Reporter, buf []byte) (int, error) {
				return rep.KeyWrite(buf, key, data, uint8(n), false)
			})
		}
		sh := r.shardFor(key)
		ln, err := r.reps[sh].KeyWrite(r.buf, key, data, uint8(n), false)
		return r.submit(sh, ln, err)
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite}
	rep.KeyWrite = wire.KeyWrite{Redundancy: uint8(n), DataLen: uint16(len(data)), Key: key}
	rep.Data = data
	if h := r.eng.hac; h != nil {
		var ob [ha.MaxReplicas]int
		return r.haFanReport(h.owners(key[:], ob[:0]), rep)
	}
	return r.submitReport(r.shardFor(key), rep)
}

// Increment adds delta to key's counter with redundancy n.
func (r *AsyncReporter) Increment(key Key, delta uint64, n int) error {
	if r.frames {
		if h := r.eng.hac; h != nil {
			var ob [ha.MaxReplicas]int
			return r.haFan(h.owners(key[:], ob[:0]), func(rep *reporter.Reporter, buf []byte) (int, error) {
				return rep.KeyIncrement(buf, key, delta, uint8(n))
			})
		}
		sh := r.shardFor(key)
		ln, err := r.reps[sh].KeyIncrement(r.buf, key, delta, uint8(n))
		return r.submit(sh, ln, err)
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement}
	rep.KeyIncrement = wire.KeyIncrement{Redundancy: uint8(n), Key: key, Delta: delta}
	rep.Data = nil
	if h := r.eng.hac; h != nil {
		var ob [ha.MaxReplicas]int
		return r.haFanReport(h.owners(key[:], ob[:0]), rep)
	}
	return r.submitReport(r.shardFor(key), rep)
}

// Postcard reports a hop observation for key (path tracing), carrying
// this reporter's switch ID as the hop value.
func (r *AsyncReporter) Postcard(key Key, hop, pathLen int) error {
	if r.frames {
		if h := r.eng.hac; h != nil {
			var ob [ha.MaxReplicas]int
			return r.haFan(h.owners(key[:], ob[:0]), func(rep *reporter.Reporter, buf []byte) (int, error) {
				return rep.Postcard(buf, key, uint8(hop), uint8(pathLen))
			})
		}
		sh := r.shardFor(key)
		ln, err := r.reps[sh].Postcard(r.buf, key, uint8(hop), uint8(pathLen))
		return r.submit(sh, ln, err)
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding}
	rep.Postcard = wire.Postcard{Key: key, Hop: uint8(hop), PathLen: uint8(pathLen), Value: r.switchID}
	rep.Data = nil
	if h := r.eng.hac; h != nil {
		var ob [ha.MaxReplicas]int
		return r.haFanReport(h.owners(key[:], ob[:0]), rep)
	}
	return r.submitReport(r.shardFor(key), rep)
}

// Append adds data to the tail of list on the shard owning the list
// (all R owning shards on an HACluster engine).
func (r *AsyncReporter) Append(list uint32, data []byte) error {
	if r.frames {
		if h := r.eng.hac; h != nil {
			var ob [ha.MaxReplicas]int
			return r.haFan(h.ring.OwnersOfList(list, h.r, ob[:0]), func(rep *reporter.Reporter, buf []byte) (int, error) {
				return rep.Append(buf, list, data, false)
			})
		}
		sh := 0
		if r.eng.cluster != nil {
			sh = r.eng.cluster.OwnerOfList(list)
		}
		ln, err := r.reps[sh].Append(r.buf, list, data, false)
		return r.submit(sh, ln, err)
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimAppend}
	rep.Append = wire.Append{ListID: list, DataLen: uint16(len(data))}
	rep.Data = data
	if h := r.eng.hac; h != nil {
		var ob [ha.MaxReplicas]int
		return r.haFanReport(h.ring.OwnersOfList(list, h.r, ob[:0]), rep)
	}
	sh := 0
	if r.eng.cluster != nil {
		sh = r.eng.cluster.OwnerOfList(list)
	}
	return r.submitReport(sh, rep)
}

// String aids debugging output in benchmarks and the dtaload CLI.
func (e *Engine) String() string {
	return fmt.Sprintf("dta.Engine{shards: %d}", e.Shards())
}
