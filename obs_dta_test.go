package dta_test

import (
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"testing"
	"time"

	"dta"
)

// TestObsMetricsPopulated checks the public telemetry surface end to
// end: ingest through a cluster engine, then read the same traffic back
// through Metrics() — the registry series and the Stats snapshots are
// views over the same cells, so they must agree exactly.
func TestObsMetricsPopulated(t *testing.T) {
	cl, err := dta.NewCluster(2, dta.Options{
		KeyWrite: &dta.KeyWriteOptions{Slots: 1 << 12, DataSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cl.Engine(dta.EngineConfig{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Reporter(1)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	reg := cl.Metrics()
	if reg == nil {
		t.Fatal("Metrics() = nil with telemetry enabled")
	}
	snap := reg.Snapshot()

	// Engine processed counts, summed over shards, must equal n.
	var processed float64
	for shard := 0; shard < 2; shard++ {
		v := snap.Find("dta_engine_processed_total", dta.ObsLabel{Key: "shard", Value: string(rune('0' + shard))})
		if v == nil {
			t.Fatalf("no dta_engine_processed_total series for shard %d", shard)
		}
		processed += v.Value
	}
	if processed != n {
		t.Errorf("dta_engine_processed_total sums to %.0f, want %d", processed, n)
	}

	// Per-collector translator series must sum to the aggregate Stats.
	var reports float64
	for collector := 0; collector < 2; collector++ {
		v := snap.Find("dta_translator_reports_total",
			dta.ObsLabel{Key: "collector", Value: string(rune('0' + collector))},
			dta.ObsLabel{Key: "primitive", Value: "key_write"})
		if v == nil {
			t.Fatalf("no key_write reports series for collector %d", collector)
		}
		reports += v.Value
	}
	if st := cl.Stats(); reports != float64(st.Reports) {
		t.Errorf("registry reports %.0f != Stats().Reports %d", reports, st.Reports)
	}

	// The exposition must render without error and carry the series.
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
}

// TestObsDisabled checks the telemetry-off mode: no registry anywhere,
// ingest and Stats still fully functional.
func TestObsDisabled(t *testing.T) {
	sys, err := dta.New(dta.Options{
		KeyWrite:         &dta.KeyWriteOptions{Slots: 1 << 12, DataSize: 4},
		DisableTelemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics() != nil {
		t.Fatal("Metrics() != nil with DisableTelemetry")
	}
	rep := sys.Reporter(1)
	for i := 0; i < 100; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 2); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.Stats(); st.Reports != 100 {
		t.Fatalf("Stats().Reports = %d with telemetry off, want 100", st.Reports)
	}
}

// TestObsStructuredIngestZeroAllocs pins the tentpole's zero-overhead
// claim, allocation half: the structured sync ingest path with metrics
// ENABLED (counters incremented, spans sampled into histograms) stays at
// zero allocations per report.
func TestObsStructuredIngestZeroAllocs(t *testing.T) {
	sys, err := dta.New(dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 16, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics() == nil {
		t.Fatal("telemetry should be on by default")
	}
	if sys.Tracer() == nil {
		// The allocation pin below exercises the trace sampler's
		// sampled-out branch on every report — it only means something
		// with the tracer actually live.
		t.Fatal("trace pipeline should be on by default")
	}
	rep := sys.Reporter(1)
	data := []byte{1, 2, 3, 4}
	for i := 0; i < 1000; i++ { // warm
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	i := uint64(0)
	allocs := testing.AllocsPerRun(5000, func() {
		if err := rep.KeyWrite(dta.KeyFromUint64(i), data, 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Increment(dta.KeyFromUint64(i), 1, 2); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("instrumented structured ingest allocated %.2f/op, want 0", allocs)
	}
}

// TestObsOverheadUnder3Pct pins the zero-overhead claim, latency half:
// the instrumented structured sync path stays within 3% of the
// DisableTelemetry baseline. Both variants pay the counter increments
// (the counters back Stats either way); the delta under test is the
// histogram observes plus the 1-in-64 sampled clock reads.
//
// Measurement is interleaved A/B rounds with the MINIMUM per variant:
// the minimum over many rounds estimates the noise-free cost of each
// path, which is what the <3% claim is about — medians or means would
// fold scheduler noise on timeshared CI hardware into the comparison.
//
// The whole measurement retries on a miss: `go test ./...` co-schedules
// other package binaries on the same cores, and a sustained-contention
// window can deny one variant a clean minimum. A real regression fails
// every attempt; scheduler noise does not survive three.
func TestObsOverheadUnder3Pct(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	build := func(disable bool) (*dta.System, *dta.Reporter) {
		sys, err := dta.New(dta.Options{
			KeyWrite:         &dta.KeyWriteOptions{Slots: 1 << 16, DataSize: 4},
			DisableTelemetry: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys, sys.Reporter(1)
	}
	data := []byte{1, 2, 3, 4}

	const (
		rounds = 40
		ops    = 20000
	)
	measure := func(rep *dta.Reporter, base uint64) float64 {
		start := time.Now()
		for i := uint64(0); i < ops; i++ {
			if err := rep.KeyWrite(dta.KeyFromUint64(base+i), data, 2); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / ops
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const attempts = 3
	var overhead, minOn, minOff float64
	for a := 0; a < attempts; a++ {
		// Fresh systems per attempt: the hot structures' heap placement
		// (and therefore their cache behaviour) is a per-allocation
		// draw, so a retry with the same objects would re-measure the
		// same unlucky layout rather than a new sample.
		_, repOn := build(false)
		_, repOff := build(true)
		measure(repOn, 0) // warm both paths before timing anything
		measure(repOff, 0)
		on := make([]float64, 0, rounds)
		off := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			base := uint64(r+1) * ops
			on = append(on, measure(repOn, base))
			off = append(off, measure(repOff, base))
		}
		sort.Float64s(on)
		sort.Float64s(off)
		minOn, minOff = on[0], off[0]
		overhead = (minOn/minOff - 1) * 100
		t.Logf("attempt %d: instrumented %.1f ns/op, baseline %.1f ns/op, overhead %.2f%%", a+1, minOn, minOff, overhead)
		if overhead < 3.0 {
			return
		}
	}
	t.Errorf("telemetry overhead %.2f%% >= 3%% on every attempt (on=%.1fns off=%.1fns)", overhead, minOn, minOff)
}

// TestObsConcurrentReadersDuringIngest drives full-rate engine ingest
// while scraper goroutines continuously Snapshot and render the shared
// registry — the race detector (CI runs go test -race) proves the
// exposition path never takes a lock the hot path touches and never
// reads a cell non-atomically.
func TestObsConcurrentReadersDuringIngest(t *testing.T) {
	cl, err := dta.NewCluster(2, dta.Options{
		KeyWrite: &dta.KeyWriteOptions{Slots: 1 << 14, DataSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cl.Engine(dta.EngineConfig{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	reg := cl.Metrics()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				if len(snap.Values) == 0 {
					t.Error("empty snapshot during ingest")
					return
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}

	var producers sync.WaitGroup
	for g := 0; g < 4; g++ {
		producers.Add(1)
		go func(g int) {
			defer producers.Done()
			rep := eng.Reporter(uint32(g + 1))
			for i := 0; i < 20000; i++ {
				if err := rep.KeyWrite(dta.KeyFromUint64(uint64(g*1_000_000+i)), []byte{1, 2, 3, 4}, 2); err != nil {
					t.Error(err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	producers.Wait()
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	readers.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
